package stats

import "math"

// MovingAverage smooths v with a centered window of the given width
// (minimum 1; even widths are rounded up to the next odd width so the
// window stays centered). Edges use the available partial window, which
// avoids manufacturing spurious boundary modes.
//
// The paper smooths binning histograms with a window w = √B where B ≈
// log₂²(M) bins, before differentiating (§3.2).
func MovingAverage(v []float64, width int) []float64 {
	if width < 1 {
		width = 1
	}
	if width%2 == 0 {
		width++
	}
	half := width / 2
	out := make([]float64, len(v))
	for i := range v {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(v) {
			hi = len(v) - 1
		}
		var s float64
		for j := lo; j <= hi; j++ {
			s += v[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out
}

// LocalSlopes estimates the first derivative of v at every index by fitting
// an ordinary-least-squares line to a centered window of the given width
// (odd; minimum 3). This is the "local regression" step of the §3.2
// partitioner: the fitted slope is the tangent of the underlying density at
// that bin, far more noise-tolerant than a two-point difference.
func LocalSlopes(v []float64, width int) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = LocalSlopeAt(v, width, i)
	}
	return out
}

// LocalSlopeAt is LocalSlopes evaluated at a single index: the same OLS
// fit over the same centered window, bit-identical to LocalSlopes(v,
// width)[i]. Callers that need the derivative at only a few indices (the
// partitioner's curvature check at valley candidates) use this to skip
// the full O(len·width) pass.
func LocalSlopeAt(v []float64, width, i int) float64 {
	if width < 3 {
		width = 3
	}
	if width%2 == 0 {
		width++
	}
	half := width / 2
	lo, hi := i-half, i+half
	if lo < 0 {
		lo = 0
	}
	if hi >= len(v) {
		hi = len(v) - 1
	}
	n := float64(hi - lo + 1)
	if n < 2 {
		return 0
	}
	// OLS slope over (x=j, y=v[j]) for j in [lo,hi].
	var sx, sy, sxy, sxx float64
	for j := lo; j <= hi; j++ {
		x, y := float64(j), v[j]
		sx += x
		sy += y
		sxy += x * y
		sxx += x * x
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// Diff returns the first discrete difference of v: out[i] = v[i+1]-v[i],
// with len(out) == len(v)-1 (empty for len(v) < 2).
func Diff(v []float64) []float64 {
	if len(v) < 2 {
		return nil
	}
	out := make([]float64, len(v)-1)
	for i := range out {
		out[i] = v[i+1] - v[i]
	}
	return out
}

// SecondDerivative estimates v” via the slopes of the LocalSlopes curve:
// differentiating the locally fitted first derivative identifies inflection
// points (regions of sudden change) per §3.2.
func SecondDerivative(v []float64, width int) []float64 {
	return LocalSlopes(LocalSlopes(v, width), width)
}

// ZeroCrossings returns the indices i where v changes sign between i and
// i+1 in the requested direction: dir > 0 finds −→+ crossings (density
// valleys when v is a first derivative), dir < 0 finds +→− crossings
// (density modes), dir == 0 finds both.
func ZeroCrossings(v []float64, dir int) []int {
	var out []int
	for i := 0; i+1 < len(v); i++ {
		a, b := v[i], v[i+1]
		switch {
		case dir >= 0 && a < 0 && b >= 0:
			out = append(out, i)
		case dir <= 0 && a > 0 && b <= 0:
			out = append(out, i)
		}
	}
	return out
}

// ArgMax returns the index of the maximum of v (first occurrence), or -1
// for empty input.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the minimum of v (first occurrence), or -1
// for empty input.
func ArgMin(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i, x := range v {
		if x < v[best] {
			best = i
		}
	}
	return best
}

// Prominence returns, for a valley at index i of the density curve v, the
// smaller of the two mode heights flanking it minus the valley depth,
// normalized by the global peak. Values near 0 indicate noise wiggles;
// values near 1 indicate a deep separation between two strong modes.
func Prominence(v []float64, i int) float64 {
	if len(v) == 0 || i < 0 || i >= len(v) {
		return 0
	}
	peak := v[ArgMax(v)]
	if peak <= 0 {
		return 0
	}
	leftMax := v[i]
	for j := i - 1; j >= 0; j-- {
		if v[j] > leftMax {
			leftMax = v[j]
		}
	}
	rightMax := v[i]
	for j := i + 1; j < len(v); j++ {
		if v[j] > rightMax {
			rightMax = v[j]
		}
	}
	return (math.Min(leftMax, rightMax) - v[i]) / peak
}

// RelativeDip returns, for a valley at index i, how far the density dips
// below the *smaller* flanking mode, relative to that mode: 0 for a flat
// wiggle, →1 for a valley reaching zero. Unlike Prominence it is invariant
// to the mass imbalance between the two flanking clusters, so a valley next
// to a small cluster is judged on its own scale rather than against the
// global peak.
func RelativeDip(v []float64, i int) float64 {
	if len(v) == 0 || i < 0 || i >= len(v) {
		return 0
	}
	leftMax := v[i]
	for j := i - 1; j >= 0; j-- {
		if v[j] > leftMax {
			leftMax = v[j]
		}
	}
	rightMax := v[i]
	for j := i + 1; j < len(v); j++ {
		if v[j] > rightMax {
			rightMax = v[j]
		}
	}
	flank := math.Min(leftMax, rightMax)
	if flank <= 0 {
		return 0
	}
	return (flank - v[i]) / flank
}
