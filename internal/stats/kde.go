package stats

import "math"

// KDEBinned evaluates a Gaussian kernel density estimate built from binned
// data (bin centers weighted by counts) at each bin center. bandwidth <= 0
// selects Silverman's rule of thumb h = 1.06·σ·n^(−1/5) computed from the
// histogram moments.
//
// DENCLUE-style KDE is the comparator the paper discusses for §3.2: it
// produces a smooth differentiable density but costs O(B²) per dimension on
// the binned representation (and O(M²) on raw points); the paper's
// moving-average + local-regression partitioner achieves similar accuracy
// at O(B·w). The ablation bench quantifies this trade-off.
func KDEBinned(centers []float64, counts []uint64, bandwidth float64) []float64 {
	mean, std, total := WeightedMeanStd(centers, counts)
	_ = mean
	out := make([]float64, len(centers))
	if total == 0 {
		return out
	}
	h := bandwidth
	if h <= 0 {
		h = 1.06 * std * math.Pow(float64(total), -0.2)
	}
	if h <= 0 {
		// Degenerate spread: all mass at one point.
		for i, c := range counts {
			out[i] = float64(c)
		}
		return out
	}
	norm := 1 / (h * math.Sqrt(2*math.Pi) * float64(total))
	for i, x := range centers {
		var s float64
		for j, c := range counts {
			if c == 0 {
				continue
			}
			u := (x - centers[j]) / h
			s += float64(c) * math.Exp(-0.5*u*u)
		}
		out[i] = s * norm
	}
	return out
}

// SilvermanBandwidth returns Silverman's rule-of-thumb bandwidth for a
// histogram.
func SilvermanBandwidth(centers []float64, counts []uint64) float64 {
	_, std, total := WeightedMeanStd(centers, counts)
	if total == 0 {
		return 0
	}
	return 1.06 * std * math.Pow(float64(total), -0.2)
}
