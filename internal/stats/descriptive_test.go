package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStd(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(v); m != 5 {
		t.Fatalf("Mean=%v", m)
	}
	// sample variance of this classic set is 32/7
	if got := Variance(v); !almost(got, 32.0/7, 1e-12) {
		t.Fatalf("Variance=%v", got)
	}
	if got := Std(v); !almost(got, math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("Std=%v", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate cases")
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(v, c.p); !almost(got, c.want, 1e-12) {
			t.Fatalf("P%v=%v want %v", c.p, got, c.want)
		}
	}
	if got := Median([]float64{7}); got != 7 {
		t.Fatalf("single-element median %v", got)
	}
	// order must not matter
	if got := Median([]float64{5, 1, 3, 2, 4}); got != 3 {
		t.Fatalf("unsorted median %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || s.Median != 2 || s.Mean != 2 {
		t.Fatalf("summary %+v", s)
	}
}

func TestMeanCI(t *testing.T) {
	mean, hw := MeanCI([]float64{10, 10, 10, 10})
	if mean != 10 || hw != 0 {
		t.Fatalf("constant data: %v ± %v", mean, hw)
	}
	mean, hw = MeanCI([]float64{9, 11})
	if mean != 10 || !almost(hw, 1.96*math.Sqrt2/math.Sqrt2, 1e-9) {
		t.Fatalf("two-point: %v ± %v", mean, hw)
	}
	if _, hw := MeanCI([]float64{5}); hw != 0 {
		t.Fatal("single sample should have zero CI")
	}
}

func TestNormalCDF(t *testing.T) {
	if got := NormalCDF(0, 0, 1); !almost(got, 0.5, 1e-12) {
		t.Fatalf("Φ(0)=%v", got)
	}
	if got := NormalCDF(1.96, 0, 1); !almost(got, 0.975, 1e-3) {
		t.Fatalf("Φ(1.96)=%v", got)
	}
	if NormalCDF(-1, 0, 0) != 0 || NormalCDF(1, 0, 0) != 1 {
		t.Fatal("degenerate sigma")
	}
}

// Property: CDF is monotone nondecreasing.
func TestNormalCDFMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return NormalCDF(a, 1, 2) <= NormalCDF(b, 1, 2)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedMeanStd(t *testing.T) {
	centers := []float64{0, 1, 2}
	counts := []uint64{1, 2, 1}
	mean, std, total := WeightedMeanStd(centers, counts)
	if total != 4 || mean != 1 {
		t.Fatalf("mean=%v total=%d", mean, total)
	}
	if !almost(std, math.Sqrt(0.5), 1e-12) {
		t.Fatalf("std=%v", std)
	}
	_, _, total = WeightedMeanStd(centers, []uint64{0, 0, 0})
	if total != 0 {
		t.Fatal("empty histogram")
	}
}

// Property: Percentile(v, 50) lies within [min, max].
func TestPercentileBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 100
		}
		s := Summarize(v)
		for _, p := range []float64{0, 10, 50, 90, 100} {
			q := Percentile(v, p)
			if q < s.Min-1e-9 || q > s.Max+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
