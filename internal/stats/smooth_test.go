package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMovingAverageConstant(t *testing.T) {
	v := []float64{3, 3, 3, 3, 3}
	got := MovingAverage(v, 3)
	for i, x := range got {
		if x != 3 {
			t.Fatalf("index %d = %v", i, x)
		}
	}
}

func TestMovingAverageWidths(t *testing.T) {
	v := []float64{0, 10, 0, 10, 0}
	// width 1 is identity
	got := MovingAverage(v, 1)
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("width1 not identity at %d", i)
		}
	}
	// even width rounds up to odd (2 -> 3)
	w2 := MovingAverage(v, 2)
	w3 := MovingAverage(v, 3)
	for i := range v {
		if w2[i] != w3[i] {
			t.Fatal("even width should behave like next odd width")
		}
	}
	// interior of width 3: average of neighbors
	if w3[1] != 10.0/3 {
		t.Fatalf("w3[1]=%v", w3[1])
	}
	// edge uses partial window
	if w3[0] != 5 {
		t.Fatalf("w3[0]=%v", w3[0])
	}
}

// Property: smoothing preserves bounds (output within [min,max] of input).
func TestMovingAverageBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		v := make([]float64, n)
		min, max := math.Inf(1), math.Inf(-1)
		for i := range v {
			v[i] = rng.NormFloat64()
			min = math.Min(min, v[i])
			max = math.Max(max, v[i])
		}
		for _, w := range []int{1, 3, 5, 9} {
			for _, x := range MovingAverage(v, w) {
				if x < min-1e-9 || x > max+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLocalSlopesOnLine(t *testing.T) {
	// y = 2x + 1 should have slope 2 everywhere, any window.
	v := make([]float64, 20)
	for i := range v {
		v[i] = 2*float64(i) + 1
	}
	for _, w := range []int{3, 5, 7} {
		for i, s := range LocalSlopes(v, w) {
			if !almost(s, 2, 1e-9) {
				t.Fatalf("width %d index %d slope %v", w, i, s)
			}
		}
	}
}

func TestLocalSlopesSignsOnParabola(t *testing.T) {
	// y = (x-10)^2: slope negative left of 10, positive right of it.
	v := make([]float64, 21)
	for i := range v {
		d := float64(i - 10)
		v[i] = d * d
	}
	s := LocalSlopes(v, 5)
	if s[3] >= 0 || s[17] <= 0 {
		t.Fatalf("slopes %v", s)
	}
	if math.Abs(s[10]) > 1e-9 {
		t.Fatalf("vertex slope %v", s[10])
	}
}

func TestDiff(t *testing.T) {
	got := Diff([]float64{1, 4, 9})
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("Diff=%v", got)
	}
	if Diff([]float64{1}) != nil {
		t.Fatal("short input")
	}
}

func TestSecondDerivativeOnParabola(t *testing.T) {
	// y = x^2 has constant positive second derivative.
	v := make([]float64, 30)
	for i := range v {
		v[i] = float64(i * i)
	}
	dd := SecondDerivative(v, 5)
	for i := 5; i < 25; i++ {
		if dd[i] <= 0 {
			t.Fatalf("interior second derivative at %d = %v", i, dd[i])
		}
	}
}

func TestZeroCrossings(t *testing.T) {
	v := []float64{-2, -1, 1, 2, -1, -3, 2}
	up := ZeroCrossings(v, 1)
	down := ZeroCrossings(v, -1)
	both := ZeroCrossings(v, 0)
	if len(up) != 2 || up[0] != 1 || up[1] != 5 {
		t.Fatalf("up=%v", up)
	}
	if len(down) != 1 || down[0] != 3 {
		t.Fatalf("down=%v", down)
	}
	if len(both) != 3 {
		t.Fatalf("both=%v", both)
	}
}

func TestArgMaxMin(t *testing.T) {
	v := []float64{3, 9, 2, 9}
	if ArgMax(v) != 1 {
		t.Fatal("ArgMax first occurrence")
	}
	if ArgMin(v) != 2 {
		t.Fatal("ArgMin")
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Fatal("empty input")
	}
}

func TestProminence(t *testing.T) {
	// Two strong modes with a deep valley between.
	v := []float64{0, 10, 0.5, 8, 0}
	p := Prominence(v, 2)
	if p < 0.7 {
		t.Fatalf("deep valley prominence %v", p)
	}
	// Shallow wiggle.
	w := []float64{0, 10, 9.5, 10, 0}
	if q := Prominence(w, 2); q > 0.1 {
		t.Fatalf("wiggle prominence %v", q)
	}
	if Prominence(nil, 0) != 0 || Prominence(v, -1) != 0 {
		t.Fatal("degenerate prominence")
	}
}

func TestRelativeDip(t *testing.T) {
	// Uneven masses: tall peak and small bump with a deep valley between.
	v := []float64{0, 100, 0.5, 8, 0}
	if d := RelativeDip(v, 2); d < 0.9 {
		t.Fatalf("deep valley relative dip %v", d)
	}
	// Flat wiggle next to the small mode.
	w := []float64{0, 100, 0, 8, 7.5, 8, 0}
	if d := RelativeDip(w, 4); d > 0.1 {
		t.Fatalf("wiggle relative dip %v", d)
	}
	if RelativeDip(nil, 0) != 0 || RelativeDip(v, -1) != 0 {
		t.Fatal("degenerate inputs")
	}
	// Zero flanks give zero.
	if RelativeDip([]float64{0, 0, 0}, 1) != 0 {
		t.Fatal("zero flanks")
	}
}
