package stats

import (
	"math/rand"
	"testing"
)

// binGaussian builds a histogram of n Gaussian samples over nb bins.
func binGaussian(rng *rand.Rand, n, nb int, mu, sigma float64, bimodalGap float64) ([]float64, []uint64) {
	lo, hi := mu-5*sigma-bimodalGap, mu+5*sigma+bimodalGap
	centers := make([]float64, nb)
	counts := make([]uint64, nb)
	w := (hi - lo) / float64(nb)
	for i := range centers {
		centers[i] = lo + (float64(i)+0.5)*w
	}
	for i := 0; i < n; i++ {
		x := mu + sigma*rng.NormFloat64()
		if bimodalGap > 0 && i%2 == 0 {
			x += bimodalGap
		}
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nb {
			b = nb - 1
		}
		counts[b]++
	}
	return centers, counts
}

func TestKSNormalAcceptsGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	centers, counts := binGaussian(rng, 20000, 64, 0, 1, 0)
	d, n := KSNormalBinned(centers, counts)
	if n != 20000 {
		t.Fatalf("n=%d", n)
	}
	// Binned KS against fitted normal should be small for true Gaussian.
	if d > 0.05 {
		t.Fatalf("KS distance %v too large for Gaussian data", d)
	}
	if !LooksNormal(centers, counts, 5) {
		t.Fatal("Gaussian histogram should look normal with relaxed threshold")
	}
}

func TestKSNormalRejectsBimodal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	centers, counts := binGaussian(rng, 20000, 64, 0, 1, 10)
	d, _ := KSNormalBinned(centers, counts)
	if d < 0.1 {
		t.Fatalf("KS distance %v too small for strongly bimodal data", d)
	}
	if LooksNormal(centers, counts, 1) {
		t.Fatal("bimodal histogram must not look normal")
	}
}

func TestKSDegenerate(t *testing.T) {
	d, n := KSNormalBinned([]float64{1, 2}, []uint64{0, 0})
	if d != 0 || n != 0 {
		t.Fatalf("empty histogram: d=%v n=%d", d, n)
	}
	// All mass in one bin: zero std => maximally non-normal.
	d, _ = KSNormalBinned([]float64{1, 2}, []uint64{100, 0})
	if d != 1 {
		t.Fatalf("single-bin d=%v want 1", d)
	}
	if !LooksNormal(nil, nil, 1) {
		t.Fatal("empty dimension should be collapsible")
	}
}

func TestLillieforsCriticalShrinks(t *testing.T) {
	if LillieforsCritical(10) <= LillieforsCritical(1000) {
		t.Fatal("critical value must shrink with n")
	}
	if c := LillieforsCritical(2); c != 0.375 {
		t.Fatalf("small-n critical %v", c)
	}
	// Sanity: for n=100 the 5% critical value is near 0.0886.
	c := LillieforsCritical(100)
	if c < 0.08 || c > 0.095 {
		t.Fatalf("n=100 critical %v", c)
	}
}

func TestKSTwoBinned(t *testing.T) {
	a := []uint64{10, 10, 10, 10}
	if d := KSTwoBinned(a, a); d != 0 {
		t.Fatalf("identical histograms d=%v", d)
	}
	b := []uint64{40, 0, 0, 0}
	if d := KSTwoBinned(a, b); d < 0.7 {
		t.Fatalf("disjoint-ish histograms d=%v", d)
	}
	if d := KSTwoBinned(a, []uint64{0, 0, 0, 0}); d != 0 {
		t.Fatalf("empty comparison d=%v", d)
	}
}
