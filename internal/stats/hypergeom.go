package stats

import "math"

// LogChoose returns ln C(n, k) using the log-gamma function, valid for
// large n without overflow. Out-of-range k yields -Inf.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x) + 1)
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// Choose returns C(n, k) as a float64 (may round for very large values).
func Choose(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	return math.Exp(LogChoose(n, k))
}

// HypergeomPMF returns P(X = k) for a hypergeometric draw of size draws
// from a population of size pop containing succ successes. This is the
// distribution in the paper's equation (1): drawing N_rp projected
// dimensions from N total of which R are informative.
func HypergeomPMF(pop, succ, draws, k int) float64 {
	if k < 0 || k > draws || k > succ || draws-k > pop-succ {
		return 0
	}
	return math.Exp(LogChoose(succ, k) + LogChoose(pop-succ, draws-k) - LogChoose(pop, draws))
}

// HypergeomMean returns E[X] = draws·succ/pop, the expectation the paper
// uses to argue N_rp ≥ N/R guarantees at least one informative dimension in
// expectation.
func HypergeomMean(pop, succ, draws int) float64 {
	if pop == 0 {
		return 0
	}
	return float64(draws) * float64(succ) / float64(pop)
}

// ProbAtLeastOneInformative returns P(X ≥ 1) for the hypergeometric draw —
// the probability that a random projection of N_rp dimensions captures at
// least one of the R informative directions.
func ProbAtLeastOneInformative(pop, succ, draws int) float64 {
	return 1 - HypergeomPMF(pop, succ, draws, 0)
}
