package stats

import (
	"math/rand"
	"testing"
)

func TestKDEBinnedUnimodal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	centers, counts := binGaussian(rng, 10000, 50, 0, 1, 0)
	dens := KDEBinned(centers, counts, 0)
	peak := ArgMax(dens)
	// Peak should be near the center bin (x≈0).
	if centers[peak] < -0.5 || centers[peak] > 0.5 {
		t.Fatalf("KDE peak at %v", centers[peak])
	}
	// Density must be nonnegative and decay toward the edges.
	for i, d := range dens {
		if d < 0 {
			t.Fatalf("negative density at %d", i)
		}
	}
	if dens[0] > dens[peak]/10 || dens[len(dens)-1] > dens[peak]/10 {
		t.Fatal("tails should be far below the peak")
	}
}

func TestKDEBinnedBimodalValley(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	centers, counts := binGaussian(rng, 20000, 80, 0, 1, 10)
	dens := KDEBinned(centers, counts, 0.5)
	// Find the valley between the two modes: density near x=5 should be
	// well below both mode densities.
	var valleyIdx int
	for i, c := range centers {
		if c > 4.5 && c < 5.5 {
			valleyIdx = i
			break
		}
	}
	peak := dens[ArgMax(dens)]
	if dens[valleyIdx] > peak/3 {
		t.Fatalf("valley density %v vs peak %v", dens[valleyIdx], peak)
	}
}

func TestKDEDegenerate(t *testing.T) {
	out := KDEBinned([]float64{1, 2}, []uint64{0, 0}, 0)
	if out[0] != 0 || out[1] != 0 {
		t.Fatal("empty histogram should give zero density")
	}
	// Zero spread: falls back to raw counts.
	out = KDEBinned([]float64{1, 2}, []uint64{5, 0}, 0)
	if out[0] != 5 || out[1] != 0 {
		t.Fatalf("degenerate spread: %v", out)
	}
}

func TestSilvermanBandwidth(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	centers, counts := binGaussian(rng, 5000, 50, 0, 2, 0)
	h := SilvermanBandwidth(centers, counts)
	if h <= 0 || h > 2 {
		t.Fatalf("bandwidth %v out of plausible range", h)
	}
	if SilvermanBandwidth(nil, nil) != 0 {
		t.Fatal("empty bandwidth")
	}
}
