// Package stats implements the statistical machinery KeyBin2's histogram
// pipeline needs: moving-average smoothing, windowed local regression and
// discrete derivatives (the §3.2 partitioner), a Lilliefors-corrected
// Kolmogorov–Smirnov normality test on binned data (§3.1 dimension
// collapsing), Gaussian kernel density estimation (the comparator in §3.2),
// percentiles, the hypergeometric distribution used to motivate N_rp, and
// the descriptive summaries (mean ± confidence interval) the evaluation
// section reports.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of v (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the unbiased sample variance of v (0 when len < 2).
func Variance(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	var ss float64
	for _, x := range v {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(v)-1)
}

// Std returns the sample standard deviation of v.
func Std(v []float64) float64 { return math.Sqrt(Variance(v)) }

// Percentile returns the p-th percentile (p in [0,100]) of v using linear
// interpolation between order statistics. It panics on empty input.
func Percentile(v []float64, p float64) float64 {
	sorted := append([]float64(nil), v...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the 50th percentile of v.
func Median(v []float64) float64 { return Percentile(v, 50) }

// Summary bundles the descriptive statistics the paper's Table 3 reports.
type Summary struct {
	N                   int
	Mean, Std, Min, Max float64
	Median, P25, P75    float64
}

// Summarize computes a Summary of v. It panics on empty input.
func Summarize(v []float64) Summary {
	min, max := v[0], v[0]
	for _, x := range v {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return Summary{
		N: len(v), Mean: Mean(v), Std: Std(v), Min: min, Max: max,
		Median: Median(v), P25: Percentile(v, 25), P75: Percentile(v, 75),
	}
}

// MeanCI returns the mean of v and the half-width of its normal-theory 95%
// confidence interval (1.96·s/√n), the format used by the paper's tables
// ("x ± y over 20 independent runs").
func MeanCI(v []float64) (mean, halfWidth float64) {
	mean = Mean(v)
	if len(v) < 2 {
		return mean, 0
	}
	return mean, 1.96 * Std(v) / math.Sqrt(float64(len(v)))
}

// NormalCDF returns Φ((x-mu)/sigma), the Gaussian cumulative distribution.
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x < mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// WeightedMeanStd returns the mean and (population) standard deviation of
// bin centers weighted by counts — the moments of a histogram.
func WeightedMeanStd(centers []float64, counts []uint64) (mean, std float64, total uint64) {
	for i, c := range counts {
		total += c
		mean += centers[i] * float64(c)
	}
	if total == 0 {
		return 0, 0, 0
	}
	mean /= float64(total)
	var ss float64
	for i, c := range counts {
		d := centers[i] - mean
		ss += d * d * float64(c)
	}
	return mean, math.Sqrt(ss / float64(total)), total
}
