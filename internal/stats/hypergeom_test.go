package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChooseSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {6, 3, 20}, {0, 0, 1},
	}
	for _, c := range cases {
		if got := Choose(c.n, c.k); !almost(got, c.want, 1e-6) {
			t.Fatalf("C(%d,%d)=%v want %v", c.n, c.k, got, c.want)
		}
	}
	if Choose(3, 5) != 0 || Choose(3, -1) != 0 {
		t.Fatal("out of range")
	}
}

func TestLogChooseLarge(t *testing.T) {
	// C(1000, 500) overflows float64 but its log must be finite.
	lc := LogChoose(1000, 500)
	if math.IsInf(lc, 0) || math.IsNaN(lc) {
		t.Fatalf("LogChoose big: %v", lc)
	}
	// symmetry
	if !almost(LogChoose(100, 30), LogChoose(100, 70), 1e-9) {
		t.Fatal("LogChoose symmetry")
	}
}

func TestHypergeomPMFSumsToOne(t *testing.T) {
	pop, succ, draws := 50, 12, 8
	var total float64
	for k := 0; k <= draws; k++ {
		p := HypergeomPMF(pop, succ, draws, k)
		if p < 0 {
			t.Fatalf("negative pmf at k=%d", k)
		}
		total += p
	}
	if !almost(total, 1, 1e-9) {
		t.Fatalf("pmf sums to %v", total)
	}
}

func TestHypergeomMeanMatchesPMF(t *testing.T) {
	f := func(seed int64) bool {
		s := int(uint(seed) % 1000)
		pop := 10 + s%40
		succ := 1 + s%pop
		draws := 1 + (s/7)%pop
		var mean float64
		for k := 0; k <= draws; k++ {
			mean += float64(k) * HypergeomPMF(pop, succ, draws, k)
		}
		return almost(mean, HypergeomMean(pop, succ, draws), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestProbAtLeastOneInformative(t *testing.T) {
	// Drawing all dimensions always captures an informative one.
	if p := ProbAtLeastOneInformative(10, 3, 10); !almost(p, 1, 1e-12) {
		t.Fatalf("draw-all p=%v", p)
	}
	// No informative dimensions: probability 0.
	if p := ProbAtLeastOneInformative(10, 0, 5); !almost(p, 0, 1e-12) {
		t.Fatalf("none-informative p=%v", p)
	}
	// Monotone in draws.
	p3 := ProbAtLeastOneInformative(100, 5, 3)
	p10 := ProbAtLeastOneInformative(100, 5, 10)
	if p10 <= p3 {
		t.Fatalf("p should grow with draws: %v vs %v", p3, p10)
	}
}

func TestHypergeomMeanDegenerate(t *testing.T) {
	if HypergeomMean(0, 0, 0) != 0 {
		t.Fatal("zero population")
	}
}
