package stats

import "math"

// KSNormalBinned computes the Kolmogorov–Smirnov distance between the
// empirical CDF of binned data (bin centers + counts) and a normal
// distribution whose mean and standard deviation are estimated from the
// same histogram — i.e. the Lilliefors variant of the test, which the paper
// uses to flag "statistically anomalous dimensions" (§3.1).
//
// It returns the KS statistic D and the effective sample size n (total
// count). A dimension whose histogram is indistinguishable from a single
// Gaussian carries no clustering structure and can be collapsed.
func KSNormalBinned(centers []float64, counts []uint64) (d float64, n uint64) {
	mean, std, total := WeightedMeanStd(centers, counts)
	if total == 0 {
		return 0, 0
	}
	if std == 0 {
		// Degenerate single-bin histogram: maximally non-normal.
		return 1, total
	}
	// The empirical CDF of binned data is exact at bin edges (every sample
	// at or below an edge is counted there), so evaluating the KS gap at
	// the upper edge of each bin avoids the half-bin discretization bias
	// that evaluating at centers would introduce.
	var cum uint64
	for i, c := range counts {
		cum += c
		var edge float64
		if i+1 < len(centers) {
			edge = (centers[i] + centers[i+1]) / 2
		} else if len(centers) >= 2 {
			edge = centers[i] + (centers[i]-centers[i-1])/2
		} else {
			edge = centers[i]
		}
		cur := float64(cum) / float64(total)
		f := NormalCDF(edge, mean, std)
		if diff := math.Abs(cur - f); diff > d {
			d = diff
		}
	}
	return d, total
}

// LillieforsCritical returns the approximate critical value of the
// Lilliefors test statistic at the 5% significance level for sample size n
// (Lilliefors 1967; asymptotic form 0.886/√n with small-sample correction
// via the Dallal–Wilkinson adjustment denominator √n − 0.01 + 0.85/√n).
func LillieforsCritical(n uint64) float64 {
	if n < 4 {
		return 0.375 // table value for the smallest testable n
	}
	fn := float64(n)
	return 0.886 / (math.Sqrt(fn) - 0.01 + 0.85/math.Sqrt(fn))
}

// LooksNormal reports whether the binned sample fails to reject normality
// at the 5% level — i.e. the dimension looks like one Gaussian blob and is
// a candidate for collapsing. The relax factor scales the critical value:
// relax > 1 collapses more aggressively, < 1 more conservatively.
func LooksNormal(centers []float64, counts []uint64, relax float64) bool {
	d, n := KSNormalBinned(centers, counts)
	if n == 0 {
		return true // empty dimension carries no information
	}
	return d <= LillieforsCritical(n)*relax
}

// KSTwoBinned returns the KS distance between two histograms defined over
// the same bin grid. Used by tests and by streaming drift detection.
func KSTwoBinned(countsA, countsB []uint64) float64 {
	var totalA, totalB uint64
	for _, c := range countsA {
		totalA += c
	}
	for _, c := range countsB {
		totalB += c
	}
	if totalA == 0 || totalB == 0 {
		return 0
	}
	var cumA, cumB uint64
	var d float64
	n := len(countsA)
	if len(countsB) < n {
		n = len(countsB)
	}
	for i := 0; i < n; i++ {
		cumA += countsA[i]
		cumB += countsB[i]
		diff := math.Abs(float64(cumA)/float64(totalA) - float64(cumB)/float64(totalB))
		if diff > d {
			d = diff
		}
	}
	return d
}
