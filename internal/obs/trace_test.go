package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestTraceSpanOrder: spans land in the exported trace in completion
// order, with offsets relative to the trace start — the property the
// server-side batch-chain test builds on.
func TestTraceSpanOrder(t *testing.T) {
	tr := NewTracer(16)
	trace := tr.Start("ingest_batch", KV("points", 128))
	base := trace.Begin

	trace.AddSpan("wal_append", base.Add(1*time.Millisecond), 500*time.Microsecond, KV("seq", 7))
	trace.AddSpan("fsync", base.Add(2*time.Millisecond), 300*time.Microsecond)
	sp := trace.Span("apply")
	sp.End(KV("labeled", 128))
	trace.AddAttrs(KV("seq", 7))
	trace.Finish()

	snap := tr.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d traces, want 1", len(snap))
	}
	got := snap[0]
	if got.Name != "ingest_batch" {
		t.Errorf("name = %q", got.Name)
	}
	if !strings.HasPrefix(got.ID, tr.run+"-") {
		t.Errorf("ID %q missing run prefix %q", got.ID, tr.run)
	}
	var names []string
	for _, s := range got.Spans {
		names = append(names, s.Name)
	}
	want := []string{"wal_append", "fsync", "apply"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("span order = %v, want %v", names, want)
	}
	if got.Spans[0].OffsetUs < 900 || got.Spans[0].OffsetUs > 1100 {
		t.Errorf("wal_append offset_us = %v, want ~1000", got.Spans[0].OffsetUs)
	}
	if got.Attrs["points"] != float64(128) && got.Attrs["points"] != 128 {
		// Snapshot() returns live values (int); via JSON they become float64.
		t.Errorf("points attr = %v", got.Attrs["points"])
	}

	// Spans added after Finish are dropped.
	liveLen := len(got.Spans)
	snapTrace := tr.Snapshot()[0]
	trace.AddSpan("late", time.Now(), time.Millisecond)
	if got := len(tr.Snapshot()[0].Spans); got != liveLen {
		t.Errorf("post-Finish span recorded: %d spans, want %d", got, liveLen)
	}
	_ = snapTrace
}

// TestTracerRingEviction: the ring keeps only the most recent `capacity`
// traces, oldest first in Snapshot.
func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(16) // min capacity
	for i := 0; i < 20; i++ {
		trace := tr.Start("t", KV("i", i))
		trace.Finish()
	}
	snap := tr.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("ring holds %d, want 16", len(snap))
	}
	if first := snap[0].Attrs["i"]; first != 4 {
		t.Errorf("oldest retained i = %v, want 4", first)
	}
	if last := snap[15].Attrs["i"]; last != 19 {
		t.Errorf("newest retained i = %v, want 19", last)
	}
}

// TestTracerLogSinkAndHandler: finished traces stream to the sink as JSON
// lines, and GET /trace serves them newest first; non-GET gets 405.
func TestTracerLogSinkAndHandler(t *testing.T) {
	tr := NewTracer(16)
	var buf bytes.Buffer
	tr.SetLogSink(func(line []byte) { buf.Write(line) })

	for i := 0; i < 3; i++ {
		trace := tr.Start("work", KV("i", i))
		sp := trace.Span("stage")
		sp.End()
		trace.Finish()
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("sink got %d lines, want 3", len(lines))
	}
	var first TraceJSON
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("sink line not JSON: %v", err)
	}
	if first.Name != "work" || len(first.Spans) != 1 || first.Spans[0].Name != "stage" {
		t.Errorf("unexpected sink trace: %+v", first)
	}

	h := tr.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /trace = %d", rec.Code)
	}
	var body struct {
		Traces []TraceJSON `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Traces) != 3 {
		t.Fatalf("handler returned %d traces, want 3", len(body.Traces))
	}
	if body.Traces[0].Attrs["i"] != float64(2) {
		t.Errorf("newest-first violated: first trace i = %v, want 2", body.Traces[0].Attrs["i"])
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/trace", nil))
	if rec.Code != 405 {
		t.Errorf("POST /trace = %d, want 405", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); allow != "GET" {
		t.Errorf("Allow = %q, want GET", allow)
	}
}

// TestTraceFinishIdempotent: double Finish publishes exactly once.
func TestTraceFinishIdempotent(t *testing.T) {
	tr := NewTracer(16)
	trace := tr.Start("once")
	trace.Finish()
	trace.Finish()
	if n := len(tr.Snapshot()); n != 1 {
		t.Fatalf("ring holds %d traces after double Finish, want 1", n)
	}
}
