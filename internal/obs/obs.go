// Package obs is keybin2's dependency-free observability substrate: a
// Prometheus-text-format metrics registry (atomic counters, gauges, and
// fixed-bucket histograms), a lightweight ring-buffer span tracer, and a
// leveled structured (key=value) logger with run-ID correlation.
//
// The package uses only the standard library and exports nothing heavier
// than atomics on the hot path, so instrumented components (the keybin2d
// serving core, the WAL, the MPI runtime, core.Stream) stay import-light
// and fast. The paper's evaluation axis is measurable stage cost and
// communication volume (PAPER.md §3, Table 2); this package is how the
// runtime reports both continuously instead of through one-off benchmark
// harnesses.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"time"
)

// Attr is one key/value annotation on a log line or trace span.
type Attr struct {
	Key   string
	Value any
}

// KV builds an Attr.
func KV(key string, value any) Attr { return Attr{Key: key, Value: value} }

// NewRunID returns a fresh 12-hex-digit process run identifier. Every
// daemon start mints one; logs, /stats, and the build-info metric carry
// it, so lines and scrapes from different incarnations of the same
// daemon (e.g. across crash/restart cycles) are distinguishable.
func NewRunID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fallback: time-derived, still unique enough to correlate runs.
		return fmt.Sprintf("%012x", uint64(time.Now().UnixNano())&0xffffffffffff)
	}
	return hex.EncodeToString(b[:])
}

// Recorder receives pipeline-stage timings from instrumented components.
// core.Stream reports its refit and warmup-initialization stages through
// this interface so the serving layer can fold them into histograms and
// traces without core importing any serving code.
type Recorder interface {
	// RecordStage observes one completed pipeline stage (e.g. "refit",
	// "warmup_init") with its wall-clock duration.
	RecordStage(stage string, d time.Duration)
}

// NopRecorder is a Recorder that discards everything.
type NopRecorder struct{}

// RecordStage implements Recorder.
func (NopRecorder) RecordStage(string, time.Duration) {}
