package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// ParseLevel maps an operator-supplied string to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// Logger emits leveled, structured key=value lines:
//
//	ts=2026-08-05T10:00:00.000Z level=info run_id=3f9a12cc41de msg="listening" addr=127.0.0.1:7420
//
// Base attributes (typically run_id) are rendered into every line, which
// is what makes logs from different daemon incarnations correlatable
// after a crash/restart cycle. All methods are safe for concurrent use.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level atomic.Int32
	base  string // pre-rendered " key=value" pairs
}

// NewLogger builds a logger writing lines at or above lvl to w, with base
// attributes stamped on every line.
func NewLogger(w io.Writer, lvl Level, base ...Attr) *Logger {
	l := &Logger{w: w, base: renderAttrs(base)}
	l.level.Store(int32(lvl))
	return l
}

// SetLevel changes the minimum emitted level.
func (l *Logger) SetLevel(lvl Level) { l.level.Store(int32(lvl)) }

// Enabled reports whether lines at lvl would be emitted.
func (l *Logger) Enabled(lvl Level) bool { return int32(lvl) >= l.level.Load() }

// With returns a child logger whose lines carry the additional base
// attributes.
func (l *Logger) With(attrs ...Attr) *Logger {
	child := &Logger{w: l.w, base: l.base + renderAttrs(attrs)}
	child.level.Store(l.level.Load())
	return child
}

// Debug emits a debug-level line.
func (l *Logger) Debug(msg string, attrs ...Attr) { l.log(LevelDebug, msg, attrs) }

// Info emits an info-level line.
func (l *Logger) Info(msg string, attrs ...Attr) { l.log(LevelInfo, msg, attrs) }

// Warn emits a warn-level line.
func (l *Logger) Warn(msg string, attrs ...Attr) { l.log(LevelWarn, msg, attrs) }

// Error emits an error-level line.
func (l *Logger) Error(msg string, attrs ...Attr) { l.log(LevelError, msg, attrs) }

// Logf adapts the printf-style log hooks used across the repo
// (server.Config.Logf, mpi's fault logging) onto this logger at info
// level: the formatted string becomes the msg attribute.
func (l *Logger) Logf(format string, args ...any) {
	l.log(LevelInfo, fmt.Sprintf(format, args...), nil)
}

func (l *Logger) log(lvl Level, msg string, attrs []Attr) {
	if !l.Enabled(lvl) || l.w == nil {
		return
	}
	var b strings.Builder
	b.Grow(96 + len(msg))
	b.WriteString("ts=")
	b.WriteString(time.Now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(lvl.String())
	b.WriteString(l.base)
	b.WriteString(" msg=")
	b.WriteString(renderValue(msg))
	b.WriteString(renderAttrs(attrs))
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

func renderAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	for _, a := range attrs {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(renderValue(a.Value))
	}
	return b.String()
}

// renderValue formats a value for a key=value line, quoting strings that
// contain whitespace, quotes, or equals signs so lines stay one-token-
// per-pair parseable.
func renderValue(v any) string {
	var s string
	switch x := v.(type) {
	case string:
		s = x
	case time.Duration:
		s = x.String()
	case error:
		s = x.Error()
	case fmt.Stringer:
		s = x.String()
	default:
		s = fmt.Sprint(x)
	}
	if strings.ContainsAny(s, " \t\"'=\n") || s == "" {
		return strconv.Quote(s)
	}
	return s
}
