package obs

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestSpanContextInjectExtract: a context round-trips through the
// traceparent header byte-for-byte.
func TestSpanContextInjectExtract(t *testing.T) {
	sc := NewSpanContext()
	if !sc.Valid() {
		t.Fatalf("NewSpanContext invalid: %+v", sc)
	}
	if len(sc.TraceID) != 32 || len(sc.SpanID) != 16 {
		t.Fatalf("ID lengths: trace %d, span %d", len(sc.TraceID), len(sc.SpanID))
	}
	h := http.Header{}
	sc.Inject(h)
	tp := h.Get(TraceparentHeader)
	if want := "00-" + sc.TraceID + "-" + sc.SpanID + "-01"; tp != want {
		t.Fatalf("traceparent = %q, want %q", tp, want)
	}
	got, ok := ExtractTraceparent(h)
	if !ok || got != sc {
		t.Fatalf("extract = %+v ok=%v, want %+v", got, ok, sc)
	}
}

// TestExtractTraceparentRejectsMalformed: absent, truncated, non-hex,
// all-zero, and unknown-version headers all fail closed.
func TestExtractTraceparentRejectsMalformed(t *testing.T) {
	cases := []string{
		"", // absent
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e47XY-00f067aa0ba902b7-01",   // non-hex trace
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",   // uppercase
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // forbidden version
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // bad separator
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // trailing junk
	}
	for _, c := range cases {
		h := http.Header{}
		if c != "" {
			h.Set(TraceparentHeader, c)
		}
		if sc, ok := ExtractTraceparent(h); ok {
			t.Errorf("extract(%q) accepted as %+v", c, sc)
		}
	}
}

// TestStartLinkedJoinsParent: a linked trace shares the parent's trace ID,
// records the parent span, mints its own root span, and exports all three
// — while an invalid parent degrades to a fresh root.
func TestStartLinkedJoinsParent(t *testing.T) {
	tr := NewTracer(16)
	parent := NewSpanContext()
	trace := tr.StartLinked("ingest_batch", parent)
	if trace.TraceID != parent.TraceID {
		t.Errorf("trace id = %q, want parent's %q", trace.TraceID, parent.TraceID)
	}
	if trace.ParentID != parent.SpanID {
		t.Errorf("parent id = %q, want %q", trace.ParentID, parent.SpanID)
	}
	if trace.SpanID == parent.SpanID || !isHexID(trace.SpanID, 16) {
		t.Errorf("root span id %q not freshly minted", trace.SpanID)
	}
	trace.AddSpan("wal_append", time.Now(), time.Millisecond)
	trace.Finish()

	got := tr.Snapshot()[0]
	if got.TraceID != parent.TraceID || got.ParentID != parent.SpanID || got.SpanID != trace.SpanID {
		t.Errorf("export ids = %q/%q/%q", got.TraceID, got.SpanID, got.ParentID)
	}
	if len(got.Spans) != 1 || got.Spans[0].Parent != trace.SpanID || !isHexID(got.Spans[0].ID, 16) {
		t.Errorf("span linkage: %+v", got.Spans)
	}

	root := tr.StartLinked("orphan", SpanContext{TraceID: "zz", SpanID: "short"})
	if root.ParentID != "" || !isHexID(root.TraceID, 32) {
		t.Errorf("invalid parent should degrade to a root trace: %+v", root)
	}
	root.Finish()
}

// TestUniqueIDs: trace and span IDs do not collide over a realistic burst.
func TestUniqueIDs(t *testing.T) {
	seen := make(map[string]bool, 20000)
	for i := 0; i < 10000; i++ {
		for _, id := range []string{NewTraceID(), NewSpanID()} {
			if seen[id] {
				t.Fatalf("duplicate id %q after %d draws", id, len(seen))
			}
			seen[id] = true
		}
	}
}

// TestSlowSpanLog: spans and traces at or above the threshold log their
// trace ID at warn level; below-threshold traces stay silent.
func TestSlowSpanLog(t *testing.T) {
	tr := NewTracer(16)
	var buf bytes.Buffer
	tr.SetSlowSpanLog(10*time.Millisecond, NewLogger(&buf, LevelWarn))

	fast := tr.Start("fast")
	fast.AddSpan("stage", fast.Begin, time.Millisecond)
	fast.Finish()
	if buf.Len() != 0 {
		t.Fatalf("fast trace logged: %q", buf.String())
	}

	slow := tr.Start("ingest_batch")
	slow.AddSpan("fsync", slow.Begin, 25*time.Millisecond)
	slow.Finish()
	out := buf.String()
	if !strings.Contains(out, "slow span") || !strings.Contains(out, "trace_id="+slow.TraceID) {
		t.Fatalf("slow span line missing trace id: %q", out)
	}
	if !strings.Contains(out, "span=fsync") {
		t.Errorf("slow span line missing span name: %q", out)
	}

	tr.SetSlowSpanLog(0, nil) // disarm
	buf.Reset()
	s2 := tr.Start("quiet")
	s2.AddSpan("fsync", s2.Begin, 25*time.Millisecond)
	s2.Finish()
	if buf.Len() != 0 {
		t.Fatalf("disarmed tracer logged: %q", buf.String())
	}
}
