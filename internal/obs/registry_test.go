package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the Prometheus text rendering byte-for-byte:
// family ordering, HELP/TYPE comments, label escaping, histogram
// expansion with cumulative buckets. A scrape of the rendered text must
// parse back to the registered values.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests handled.")
	c.Add(41)
	c.Inc()
	g := r.Gauge("test_queue_depth", "Pending batches.")
	g.Set(7)
	cv := r.CounterVec("test_batches_total", "Batches by result.", "result")
	cv.With("accepted").Add(3)
	cv.With("rejected").Add(1)
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2.0)
	r.GaugeVec("test_escaped", `Help with \ backslash`, "path").With(`a"b\c`).Set(1)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP test_batches_total Batches by result.
# TYPE test_batches_total counter
test_batches_total{result="accepted"} 3
test_batches_total{result="rejected"} 1
# HELP test_escaped Help with \\ backslash
# TYPE test_escaped gauge
test_escaped{path="a\"b\\c"} 1
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 2.55
test_latency_seconds_count 3
# HELP test_queue_depth Pending batches.
# TYPE test_queue_depth gauge
test_queue_depth 7
# HELP test_requests_total Requests handled.
# TYPE test_requests_total counter
test_requests_total 42
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Round trip: the scrape parses back to the registered families.
	parsed, err := ParseExposition(strings.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		"test_requests_total":                    42,
		"test_queue_depth":                       7,
		`test_batches_total{result="accepted"}`:  3,
		`test_batches_total{result="rejected"}`:  1,
		`test_latency_seconds_bucket{le="+Inf"}`: 3,
		"test_latency_seconds_count":             3,
		"test_latency_seconds_sum":               2.55,
	}
	for k, want := range checks {
		if got, ok := parsed[k]; !ok || got != want {
			t.Errorf("parsed[%q] = %v (present=%v), want %v", k, got, ok, want)
		}
	}
}

// TestHistogramBucketBoundaries pins which bucket an observation exactly
// on a boundary lands in: Prometheus buckets are le (less-or-equal), so a
// value equal to a bound counts in that bound's bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.0, 1.0001, 2.0, 4.9, 5.0, 5.0001, 100} {
		h.Observe(v)
	}
	// Raw (non-cumulative) per-bucket counts: (-inf,1] (1,2] (2,5] (5,inf)
	wantRaw := []int64{2, 2, 2, 2}
	for i, want := range wantRaw {
		if got := h.counts[i].Load(); got != want {
			t.Errorf("bucket %d: got %d observations, want %d", i, got, want)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	wantSum := 0.5 + 1.0 + 1.0001 + 2.0 + 4.9 + 5.0 + 5.0001 + 100
	if diff := h.Sum() - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}

	// Cumulative rendering: le="1" holds 2, le="2" holds 4, le="5" holds
	// 6, +Inf holds all 8.
	r := NewRegistry()
	rh := r.Histogram("bounds_seconds", "x", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.0, 1.0001, 2.0, 4.9, 5.0, 5.0001, 100} {
		rh.Observe(v)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for le, want := range map[string]float64{"1": 2, "2": 4, "5": 6, "+Inf": 8} {
		key := fmt.Sprintf(`bounds_seconds_bucket{le="%s"}`, le)
		if parsed[key] != want {
			t.Errorf("%s = %v, want %v", key, parsed[key], want)
		}
	}
}

// TestRegistryConcurrent hammers registration, mutation, and scraping
// from many goroutines; run under -race this is the registry's thread-
// safety proof.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	depth := r.Gauge("conc_depth", "gauge under OnCollect")
	r.OnCollect(func() { depth.Set(3) })

	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cv := r.CounterVec("conc_ops_total", "ops", "worker")
			h := r.Histogram("conc_lat_seconds", "lat", nil)
			mine := cv.With(fmt.Sprintf("w%d", w%4))
			for i := 0; i < iters; i++ {
				mine.Inc()
				r.Counter("conc_shared_total", "shared").Inc()
				h.Observe(float64(i) / iters)
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := parsed["conc_shared_total"]; got != workers*iters {
		t.Errorf("shared counter = %v, want %d", got, workers*iters)
	}
	var perWorker float64
	for w := 0; w < 4; w++ {
		perWorker += parsed[fmt.Sprintf(`conc_ops_total{worker="w%d"}`, w)]
	}
	if perWorker != workers*iters {
		t.Errorf("summed labeled counters = %v, want %d", perWorker, workers*iters)
	}
	if got := parsed["conc_lat_seconds_count"]; got != workers*iters {
		t.Errorf("histogram count = %v, want %d", got, workers*iters)
	}
	if got := parsed["conc_depth"]; got != 3 {
		t.Errorf("OnCollect gauge = %v, want 3", got)
	}
}

// TestRegistryReRegistrationIdempotent: same (name, kind, labels) returns
// the same underlying instrument; a kind mismatch panics.
func TestRegistryReRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("idem_total", "x")
	b := r.Counter("idem_total", "different help is fine")
	if a != b {
		t.Fatal("re-registration returned a distinct counter")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatal("instruments not shared")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("idem_total", "now a gauge")
}
