package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer keeps a ring buffer of recently finished traces and optionally
// appends each one as a JSON line to a log writer. A trace is a named
// unit of work (one ingest batch, one MPI collective) carrying an ID and
// an ordered list of spans; spans are stages inside the trace (WAL
// append, fsync, apply, refit). Traces are cheap — a few small
// allocations per trace, atomics elsewhere — so stamping every ingest
// batch is affordable at production rates.
type Tracer struct {
	mu   sync.Mutex
	ring []*Trace
	next int
	full bool

	logMu sync.Mutex
	logW  func([]byte) // sink for finished traces (nil = off)

	// Slow-span logging (SetSlowSpanLog): spans or traces at or above
	// slowNs log their trace ID through slowLog, linking a metrics
	// anomaly (a latency histogram spike) to the exact trace behind it.
	slowNs  atomic.Int64
	slowLog atomic.Pointer[Logger]

	seq atomic.Uint64
	run string // run-ID prefix for trace IDs
}

// NewTracer builds a tracer retaining the last capacity finished traces
// (minimum 16).
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{ring: make([]*Trace, capacity), run: NewRunID()}
}

// SetRunID replaces the run-ID prefix stamped on trace IDs (by default a
// fresh NewRunID), aligning traces with the owner's log/metric identity.
// Call before the first Start; the prefix is read without locking.
func (t *Tracer) SetRunID(id string) {
	if id != "" {
		t.run = id
	}
}

// SetLogSink directs every finished trace, marshaled as one JSON line
// (newline included), to fn. Pass nil to disable. fn is called outside
// the tracer's ring lock but serialized, so a plain file writer is safe.
func (t *Tracer) SetLogSink(fn func(line []byte)) {
	t.logMu.Lock()
	t.logW = fn
	t.logMu.Unlock()
}

// SetSlowSpanLog arms slow-span logging: any span (or whole trace) whose
// duration reaches threshold logs its trace ID, span name, and duration
// through logger at warn level when the trace finishes. threshold <= 0 or
// a nil logger disables. Safe to call concurrently with tracing.
func (t *Tracer) SetSlowSpanLog(threshold time.Duration, logger *Logger) {
	if threshold <= 0 || logger == nil {
		t.slowNs.Store(0)
		t.slowLog.Store(nil)
		return
	}
	t.slowLog.Store(logger)
	t.slowNs.Store(int64(threshold))
}

// Start begins a root trace with a fresh trace ID. The caller must Finish
// it; until then it is not visible in the ring.
func (t *Tracer) Start(name string, attrs ...Attr) *Trace {
	return &Trace{
		tr:      t,
		ID:      fmt.Sprintf("%s-%06d", t.run, t.seq.Add(1)),
		TraceID: NewTraceID(),
		SpanID:  NewSpanID(),
		Name:    name,
		Begin:   time.Now(),
		attrs:   attrs,
	}
}

// StartLinked begins a trace joined to a remote caller's context
// (typically extracted from a traceparent header): the new trace shares
// the caller's trace ID and records the caller's span ID as its parent,
// so the two processes' ring buffers hold two halves of one trace. An
// invalid parent degrades to Start — a fresh root trace.
func (t *Tracer) StartLinked(name string, parent SpanContext, attrs ...Attr) *Trace {
	tr := t.Start(name, attrs...)
	if parent.Valid() {
		tr.TraceID = parent.TraceID
		tr.ParentID = parent.SpanID
	}
	return tr
}

// Trace is one in-flight or finished unit of work. Its methods are safe
// for concurrent use: a trace may be handed between goroutines (e.g. from
// an HTTP handler to the writer goroutine).
type Trace struct {
	tr *Tracer
	// ID is the human-scannable run-local identity ("<run>-000042");
	// TraceID/SpanID/ParentID are the distributed identity (see
	// tracectx.go): TraceID names the cross-process trace, SpanID this
	// process's root span within it, ParentID the remote caller's span
	// (empty at a trace root).
	ID       string
	TraceID  string
	SpanID   string
	ParentID string
	Name     string
	Begin    time.Time

	mu      sync.Mutex
	spans   []SpanData
	attrs   []Attr
	dur     time.Duration
	done    bool
	pending int // extra Finish calls required before publication (see RequireFinishes)
}

// Context returns the span context downstream requests should carry: this
// trace's ID with its root span as the parent-to-be.
func (t *Trace) Context() SpanContext {
	return SpanContext{TraceID: t.TraceID, SpanID: t.SpanID}
}

// SpanData is one completed stage inside a trace. ID is the span's own
// identity, Parent the span it nests under (the trace's root span).
type SpanData struct {
	Name   string
	ID     string
	Parent string
	Start  time.Time
	Dur    time.Duration
	Attrs  []Attr
}

// Span is an open stage; End closes it.
type Span struct {
	t     *Trace
	name  string
	start time.Time
	attrs []Attr
}

// Span opens a stage. Stages are recorded in completion order.
func (t *Trace) Span(name string, attrs ...Attr) *Span {
	return &Span{t: t, name: name, start: time.Now(), attrs: attrs}
}

// End closes the span, appending any extra attributes.
func (s *Span) End(attrs ...Attr) {
	d := time.Since(s.start)
	s.t.AddSpan(s.name, s.start, d, append(s.attrs, attrs...)...)
}

// AddSpan records an already-timed stage as a child of the trace's root
// span, minting the span its own ID.
func (t *Trace) AddSpan(name string, start time.Time, d time.Duration, attrs ...Attr) {
	t.mu.Lock()
	if !t.done {
		t.spans = append(t.spans, SpanData{
			Name: name, ID: NewSpanID(), Parent: t.SpanID,
			Start: start, Dur: d, Attrs: attrs,
		})
	}
	t.mu.Unlock()
}

// AddAttrs appends trace-level attributes (e.g. the WAL sequence learned
// mid-flight).
func (t *Trace) AddAttrs(attrs ...Attr) {
	t.mu.Lock()
	if !t.done {
		t.attrs = append(t.attrs, attrs...)
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded stages so far.
func (t *Trace) Spans() []SpanData {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanData(nil), t.spans...)
}

// RequireFinishes arms the trace to publish only after n Finish calls.
// Use it when a trace's stages end on different goroutines — e.g. a
// pipelined ingest whose durability ack (handler) and apply (writer)
// complete concurrently and both record final spans. Call before handing
// the trace to the other goroutine. n < 1 is treated as 1.
func (t *Trace) RequireFinishes(n int) {
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	if !t.done {
		t.pending = n - 1
	}
	t.mu.Unlock()
}

// Finish seals the trace and publishes it into the tracer's ring (and the
// trace log, when one is configured). Finish is idempotent; spans added
// after it are dropped. When RequireFinishes armed the trace, only the
// final Finish publishes — earlier ones just decrement the pending count.
func (t *Trace) Finish() {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	if t.pending > 0 {
		t.pending--
		t.mu.Unlock()
		return
	}
	t.done = true
	t.dur = time.Since(t.Begin)
	t.mu.Unlock()

	tr := t.tr
	tr.mu.Lock()
	tr.ring[tr.next] = t
	tr.next++
	if tr.next == len(tr.ring) {
		tr.next = 0
		tr.full = true
	}
	tr.mu.Unlock()

	tr.logMu.Lock()
	sink := tr.logW
	if sink != nil {
		line, err := json.Marshal(t.export())
		if err == nil {
			sink(append(line, '\n'))
		}
	}
	tr.logMu.Unlock()

	if th := time.Duration(tr.slowNs.Load()); th > 0 {
		if lg := tr.slowLog.Load(); lg != nil {
			t.logSlow(th, lg)
		}
	}
}

// logSlow emits one warn line per span at or above the threshold (and one
// for the whole trace), each carrying the trace ID — the pivot from a
// latency alert to the exact cross-process trace behind it. Called after
// Finish sealed the trace; the lock only guards against a straggling
// AddSpan appending mid-read.
func (t *Trace) logSlow(th time.Duration, lg *Logger) {
	t.mu.Lock()
	spans := append([]SpanData(nil), t.spans...)
	dur := t.dur
	t.mu.Unlock()
	for _, sp := range spans {
		if sp.Dur >= th {
			lg.Warn("slow span",
				KV("trace_id", t.TraceID), KV("span_id", sp.ID), KV("trace", t.Name),
				KV("span", sp.Name), KV("dur_ms", float64(sp.Dur.Microseconds())/1000))
		}
	}
	if dur >= th {
		lg.Warn("slow trace",
			KV("trace_id", t.TraceID), KV("span_id", t.SpanID), KV("trace", t.Name),
			KV("spans", len(spans)), KV("dur_ms", float64(dur.Microseconds())/1000))
	}
}

// TraceJSON is the wire shape of one finished trace, served by the /trace
// handler and written to the trace log.
type TraceJSON struct {
	ID       string         `json:"id"`
	TraceID  string         `json:"trace_id"`
	SpanID   string         `json:"span_id"`
	ParentID string         `json:"parent_id,omitempty"`
	Name     string         `json:"name"`
	Start    string         `json:"start"` // RFC3339Nano
	DurUs    float64        `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Spans    []SpanJSON     `json:"spans,omitempty"`
}

// SpanJSON is one stage in TraceJSON. OffsetUs is the span start relative
// to the trace start.
type SpanJSON struct {
	Name     string         `json:"name"`
	ID       string         `json:"span_id"`
	Parent   string         `json:"parent_id,omitempty"`
	OffsetUs float64        `json:"offset_us"`
	DurUs    float64        `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

func (t *Trace) export() TraceJSON {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := TraceJSON{
		ID:       t.ID,
		TraceID:  t.TraceID,
		SpanID:   t.SpanID,
		ParentID: t.ParentID,
		Name:     t.Name,
		Start:    t.Begin.Format(time.RFC3339Nano),
		DurUs:    float64(t.dur.Microseconds()),
		Attrs:    attrMap(t.attrs),
	}
	for _, sp := range t.spans {
		out.Spans = append(out.Spans, SpanJSON{
			Name:     sp.Name,
			ID:       sp.ID,
			Parent:   sp.Parent,
			OffsetUs: float64(sp.Start.Sub(t.Begin).Microseconds()),
			DurUs:    float64(sp.Dur.Microseconds()),
			Attrs:    attrMap(sp.Attrs),
		})
	}
	return out
}

// Snapshot returns the finished traces currently retained, oldest first.
func (t *Tracer) Snapshot() []TraceJSON {
	t.mu.Lock()
	var traces []*Trace
	if t.full {
		traces = append(traces, t.ring[t.next:]...)
		traces = append(traces, t.ring[:t.next]...)
	} else {
		traces = append(traces, t.ring[:t.next]...)
	}
	t.mu.Unlock()
	out := make([]TraceJSON, 0, len(traces))
	for _, tr := range traces {
		out = append(out, tr.export())
	}
	return out
}

// Handler serves GET /trace: {"traces":[...]} newest first. Any other
// method gets 405.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET")
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		snap := t.Snapshot()
		// Newest first: the interesting trace is usually the latest.
		for i, j := 0, len(snap)-1; i < j; i, j = i+1, j-1 {
			snap[i], snap[j] = snap[j], snap[i]
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"traces": snap})
	})
}
