package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLoggerLevelsAndFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo, KV("run_id", "abc123"))

	l.Debug("hidden")
	l.Info("listening", KV("addr", "127.0.0.1:7420"))
	l.Warn("queue full", KV("depth", 256))
	l.Error("wal wedged", KV("err", "disk gone bad"))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3 (debug suppressed):\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "level=info") ||
		!strings.Contains(lines[0], "run_id=abc123") ||
		!strings.Contains(lines[0], "msg=listening") ||
		!strings.Contains(lines[0], "addr=127.0.0.1:7420") {
		t.Errorf("info line malformed: %s", lines[0])
	}
	if !strings.HasPrefix(lines[0], "ts=") {
		t.Errorf("line missing ts prefix: %s", lines[0])
	}
	if !strings.Contains(lines[1], "level=warn") || !strings.Contains(lines[1], "depth=256") {
		t.Errorf("warn line malformed: %s", lines[1])
	}
	// Values with spaces are quoted so lines remain one-token-per-pair.
	if !strings.Contains(lines[2], `err="disk gone bad"`) {
		t.Errorf("error line not quoted: %s", lines[2])
	}

	l.SetLevel(LevelDebug)
	l.Debug("now visible")
	if !strings.Contains(buf.String(), "msg="+`"now visible"`) {
		t.Errorf("debug line missing after SetLevel: %s", buf.String())
	}
}

func TestLoggerWithAndLogf(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo, KV("run_id", "r1"))
	child := l.With(KV("component", "wal"))
	child.Info("rotated", KV("segment", 3))
	line := strings.TrimSpace(buf.String())
	for _, want := range []string{"run_id=r1", "component=wal", "msg=rotated", "segment=3"} {
		if !strings.Contains(line, want) {
			t.Errorf("child line missing %q: %s", want, line)
		}
	}

	buf.Reset()
	l.Logf("checkpoint %d done in %s", 4, 250*time.Millisecond)
	line = strings.TrimSpace(buf.String())
	if !strings.Contains(line, `msg="checkpoint 4 done in 250ms"`) {
		t.Errorf("Logf line malformed: %s", line)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "": LevelInfo,
		"warn": LevelWarn, "warning": LevelWarn, "ERROR": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) should fail")
	}
}

func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Info("tick", KV("worker", w), KV("i", i))
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8*200 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*200)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "ts=") || !strings.Contains(line, "msg=tick") {
			t.Fatalf("interleaved/corrupt line: %q", line)
		}
	}
}

func TestNewRunID(t *testing.T) {
	a, b := NewRunID(), NewRunID()
	if len(a) != 12 || len(b) != 12 {
		t.Fatalf("run IDs %q/%q not 12 hex chars", a, b)
	}
	if a == b {
		t.Fatalf("run IDs collided: %q", a)
	}
}
