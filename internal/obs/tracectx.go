package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"net/http"
	"sync/atomic"
	"time"
)

// Trace context: the identifiers that let one unit of work be followed
// across process boundaries. A distributed trace is named by a 128-bit
// trace ID; every trace (and every span inside it) carries a 64-bit span
// ID, and a child records its parent's span ID. The IDs travel between
// processes in a W3C Trace Context "traceparent" HTTP header:
//
//	traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//	             ^^ ^^^^^^^^^^^^^ trace id ^^^^^^^^ ^^^ span id ^^^^^ ^^
//	          version            (32 hex)               (16 hex)    flags
//
// A server that extracts the header and starts its trace with StartLinked
// shares the caller's trace ID and records the caller's span ID as its
// parent — which is what lets keybin2top reassemble one ingest's journey
// from client through router to shard out of three processes' ring
// buffers.

// TraceparentHeader is the canonical header name (http.Header.Set
// canonicalizes to this form on the wire).
const TraceparentHeader = "Traceparent"

// SpanContext names one span within one distributed trace — the part of a
// trace that crosses process boundaries.
type SpanContext struct {
	TraceID string // 32 lowercase hex digits, not all zero
	SpanID  string // 16 lowercase hex digits, not all zero
}

// Valid reports whether the context carries well-formed, non-zero IDs.
func (c SpanContext) Valid() bool {
	return isHexID(c.TraceID, 32) && isHexID(c.SpanID, 16)
}

// Inject stamps the context onto h as a traceparent header (sampled
// flag set — keybin2 traces everything into ring buffers; sampling is
// retention, not collection). Invalid contexts stamp nothing.
func (c SpanContext) Inject(h http.Header) {
	if !c.Valid() {
		return
	}
	h.Set(TraceparentHeader, "00-"+c.TraceID+"-"+c.SpanID+"-01")
}

// ExtractTraceparent parses the traceparent header out of h. The second
// return is false when the header is absent or malformed — callers start
// a fresh root trace in that case.
func ExtractTraceparent(h http.Header) (SpanContext, bool) {
	v := h.Get(TraceparentHeader)
	// version(2) '-' traceid(32) '-' spanid(16) '-' flags(2)
	if len(v) != 55 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return SpanContext{}, false
	}
	if v[0] != '0' || v[1] != '0' {
		// Only version 00 is understood; ff is forbidden by the spec and
		// anything else may have a different layout.
		return SpanContext{}, false
	}
	c := SpanContext{TraceID: v[3:35], SpanID: v[36:52]}
	if !c.Valid() || !isHexID(v[53:55], 2) {
		return SpanContext{}, false
	}
	return c, true
}

// isHexID reports whether s is exactly n lowercase hex digits and not all
// zeros (all-zero IDs are the spec's "invalid" sentinel).
func isHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for i := 0; i < n; i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return zero == false || n == 2 // flags may be 00; IDs may not
}

// idState seeds trace/span ID generation: a crypto-random starting point
// walked by a splitmix64 step per ID. Collision-resistant across
// processes (each seeds independently) without paying a crypto/rand read
// per span on the ingest hot path.
var idState atomic.Uint64

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(b[:]))
	} else {
		idState.Store(uint64(time.Now().UnixNano()))
	}
}

// nextID returns the next non-zero 64-bit ID (splitmix64 over an atomic
// counter — one atomic add and a few multiplies per ID).
func nextID() uint64 {
	x := idState.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1 // the all-zero ID is the invalid sentinel
	}
	return x
}

// NewTraceID mints a fresh 128-bit trace ID (32 lowercase hex digits).
func NewTraceID() string {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], nextID())
	binary.BigEndian.PutUint64(b[8:], nextID())
	return hex.EncodeToString(b[:])
}

// NewSpanID mints a fresh 64-bit span ID (16 lowercase hex digits).
func NewSpanID() string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], nextID())
	return hex.EncodeToString(b[:])
}

// NewSpanContext mints a root context: a fresh trace ID with a fresh span
// ID. Clients stamp one onto each outgoing request so the receiving
// server's trace joins a trace the client named.
func NewSpanContext() SpanContext {
	return SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
}
