package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in the Prometheus text
// exposition format. All instrument operations are lock-free atomics;
// registration and scraping take locks, so the hot path (Inc/Add/Set/
// Observe on an already-registered instrument) never contends with
// scrapes beyond cache traffic.
//
// Registration is idempotent: registering a name that already exists with
// the same kind and label names returns the existing family's instrument.
// Re-registering a name with a different kind or label arity panics —
// that is a programming error, not an operational condition.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	collect  []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// OnCollect registers fn to run at the start of every scrape, before the
// families are rendered. Components use it to copy externally-owned state
// (queue lengths, WAL positions, mpi.Stats snapshots) into gauges without
// paying for the copy on the hot path.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	r.collect = append(r.collect, fn)
	r.mu.Unlock()
}

const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one named metric with fixed label names and one series per
// distinct label-value tuple.
type family struct {
	name, help, kind string
	labels           []string
	buckets          []float64 // histograms only

	mu     sync.RWMutex
	series map[string]*series
}

type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

func (r *Registry) family(name, help, kind string, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s(%d labels), was %s(%d labels)",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels,
		buckets: buckets, series: make(map[string]*series)}
	r.families[name] = f
	return f
}

// seriesFor returns (creating if needed) the series for the given label
// values.
func (f *family) seriesFor(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.series[key]; ok {
		return s
	}
	s = &series{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		s.counter = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		s.hist = newHistogram(f.buckets)
	}
	f.series[key] = s
	return s
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the series to stay monotone; this is
// not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add increments the gauge by delta (CAS loop; safe concurrently).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket latency/size distribution. Buckets are
// cumulative upper bounds in ascending order; an implicit +Inf bucket
// catches everything beyond the last bound. Observations are two atomic
// adds — no locks, no allocation.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomicFloat
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// atomicFloat is a float64 with atomic Add, via CAS on the bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(delta float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// DefBuckets is the default latency histogram layout in seconds: 100µs to
// 10s, roughly 2.5× steps — wide enough for fsyncs and refits alike.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExpBuckets returns n bucket bounds starting at start, each factor times
// the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, nil, nil).seriesFor(nil).counter
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, nil, nil).seriesFor(nil).gauge
}

// Histogram registers (or fetches) an unlabeled histogram with the given
// cumulative bucket bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.family(name, help, kindHistogram, nil, buckets).seriesFor(nil).hist
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) CounterVec {
	return CounterVec{r.family(name, help, kindCounter, labels, nil)}
}

// With returns the counter for the given label values, creating it on
// first use.
func (v CounterVec) With(labelValues ...string) *Counter {
	return v.f.seriesFor(labelValues).counter
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) GaugeVec {
	return GaugeVec{r.family(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.seriesFor(labelValues).gauge
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a labeled histogram family
// (nil buckets = DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return HistogramVec{r.family(name, help, kindHistogram, labels, buckets)}
}

// With returns the histogram for the given label values.
func (v HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.seriesFor(labelValues).hist
}

// --- exposition ----------------------------------------------------------

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by label
// values, histograms expanded into cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	hooks := append([]func(){}, r.collect...)
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	for _, fn := range hooks {
		fn()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		f.mu.RLock()
		sers := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			sers = append(sers, s)
		}
		f.mu.RUnlock()
		sort.Slice(sers, func(i, j int) bool {
			return strings.Join(sers[i].labelValues, "\xff") < strings.Join(sers[j].labelValues, "\xff")
		})
		for _, s := range sers {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, renderLabels(f.labels, s.labelValues, "", ""), s.counter.Value())
			case kindGauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, renderLabels(f.labels, s.labelValues, "", ""), formatFloat(s.gauge.Value()))
			case kindHistogram:
				h := s.hist
				cum := int64(0)
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name,
						renderLabels(f.labels, s.labelValues, "le", formatFloat(bound)), cum)
				}
				cum += h.counts[len(h.bounds)].Load()
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name,
					renderLabels(f.labels, s.labelValues, "le", "+Inf"), cum)
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name,
					renderLabels(f.labels, s.labelValues, "", ""), formatFloat(h.Sum()))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name,
					renderLabels(f.labels, s.labelValues, "", ""), h.Count())
			}
		}
	}
	return bw.Flush()
}

// Handler serves GET /metrics; any other method gets 405.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET")
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// renderLabels renders {a="x",b="y"} plus an optional extra pair (the
// histogram le label); returns "" for no labels at all.
func renderLabels(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParseExposition parses Prometheus text-format output into a flat map of
// series identity ("name" or `name{label="value",...}`, exactly as
// rendered) to value. Comment and blank lines are skipped. It understands
// what WritePrometheus emits — enough for clients to diff two scrapes —
// not every corner of the full exposition grammar.
func ParseExposition(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is the last space-separated field; the series identity
		// is everything before it (label values may themselves contain
		// spaces, so split from the right).
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("obs: unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: bad value in line %q: %w", line, err)
		}
		out[strings.TrimSpace(line[:i])] = v
	}
	return out, sc.Err()
}
