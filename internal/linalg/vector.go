package linalg

import "math"

// Dot returns the inner product of a and b. The slices must have equal
// length; this is the hot loop of projection, so it is not checked.
func Dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm of v.
func Norm(v []float64) float64 {
	var ss float64
	for _, x := range v {
		ss += x * x
	}
	return math.Sqrt(ss)
}

// Normalize scales v in place to unit length and returns its original norm.
// A zero vector is left unchanged and 0 is returned.
func Normalize(v []float64) float64 {
	n := Norm(v)
	if n == 0 {
		return 0
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return n
}

// AxpyInPlace computes y += a*x in place.
func AxpyInPlace(y []float64, a float64, x []float64) {
	for i, xv := range x {
		y[i] += a * xv
	}
}

// Sub returns a-b as a new slice.
func Sub(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Add returns a+b as a new slice.
func Add(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	var s float64
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 { return math.Sqrt(SqDist(a, b)) }

// CosAngle returns the cosine of the angle between a and b, or 0 when either
// vector is zero.
func CosAngle(a, b []float64) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// MinMax returns the minimum and maximum of v. It panics on empty input.
func MinMax(v []float64) (min, max float64) {
	min, max = v[0], v[0]
	for _, x := range v[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
