package linalg

import (
	"testing"

	"keybin2/internal/xrand"
)

// BenchmarkMulProjection measures Mul at the ingest hot path's shape: a
// chunk of points (tall) times a joined projection (skinny).
func BenchmarkMulProjection(b *testing.B) {
	const rows, dims, cols = 1024, 16, 9
	rng := xrand.New(1)
	a := NewMatrix(rows, dims)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
	}
	p := NewMatrix(dims, cols)
	for i := range p.Data {
		p.Data[i] = rng.Float64()
	}
	dst := NewMatrix(rows, cols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mul(dst, a, p); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "pts/s")
}
