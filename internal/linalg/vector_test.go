package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDotNormDist(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot=%v want 32", got)
	}
	if got := Norm([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm=%v want 5", got)
	}
	if got := SqDist(a, b); got != 27 {
		t.Fatalf("SqDist=%v want 27", got)
	}
	if got := Dist(a, b); !almost(got, math.Sqrt(27), 1e-12) {
		t.Fatalf("Dist=%v", got)
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{3, 4}
	n := Normalize(v)
	if n != 5 || !almost(Norm(v), 1, 1e-12) {
		t.Fatalf("Normalize: n=%v v=%v", n, v)
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 || z[0] != 0 {
		t.Fatal("zero vector must be untouched")
	}
}

func TestAddSubAxpy(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{10, 20}
	if s := Add(a, b); s[0] != 11 || s[1] != 22 {
		t.Fatalf("Add=%v", s)
	}
	if d := Sub(b, a); d[0] != 9 || d[1] != 18 {
		t.Fatalf("Sub=%v", d)
	}
	y := []float64{1, 1}
	AxpyInPlace(y, 2, []float64{3, 4})
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy=%v", y)
	}
}

func TestCosAngle(t *testing.T) {
	if c := CosAngle([]float64{1, 0}, []float64{0, 1}); !almost(c, 0, 1e-12) {
		t.Fatalf("orthogonal cos=%v", c)
	}
	if c := CosAngle([]float64{2, 0}, []float64{5, 0}); !almost(c, 1, 1e-12) {
		t.Fatalf("parallel cos=%v", c)
	}
	if c := CosAngle([]float64{0, 0}, []float64{1, 0}); c != 0 {
		t.Fatalf("zero-vector cos=%v", c)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax=(%v,%v)", min, max)
	}
	min, max = MinMax([]float64{5})
	if min != 5 || max != 5 {
		t.Fatalf("single elem MinMax=(%v,%v)", min, max)
	}
}

// Property: Cauchy–Schwarz |a·b| <= |a||b|.
func TestCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		a, b := make([]float64, n), make([]float64, n)
		for i := range a {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		return math.Abs(Dot(a, b)) <= Norm(a)*Norm(b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality Dist(a,c) <= Dist(a,b)+Dist(b,c).
func TestTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		a, b, c := make([]float64, n), make([]float64, n), make([]float64, n)
		for i := range a {
			a[i], b[i], c[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		}
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
