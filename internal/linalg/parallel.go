package linalg

import (
	"runtime"
	"sync"
)

// ParallelMul computes a×b using up to workers goroutines, splitting the
// output rows into contiguous blocks. workers <= 0 selects runtime.NumCPU().
// This is the kernel used to project large point blocks through a
// projection matrix; the row split mirrors the per-point data parallelism
// that the paper offloads to the GPU.
func ParallelMul(dst, a, b *Matrix, workers int) (*Matrix, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if a.Rows < 2*workers || workers == 1 {
		// Serial fast path. Kept free of the goroutine machinery below:
		// the fan-out closures capture dst, which would force it to the
		// heap even when no goroutine is ever launched.
		return Mul(dst, a, b)
	}
	return parallelMul(dst, a, b, workers)
}

func parallelMul(dst, a, b *Matrix, workers int) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, ErrShape
	}
	if dst == nil {
		dst = NewMatrix(a.Rows, b.Cols)
	} else if dst.Rows != a.Rows || dst.Cols != b.Cols {
		return nil, ErrShape
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for lo := 0; lo < a.Rows; lo += chunk {
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulRange(dst, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return dst, nil
}
