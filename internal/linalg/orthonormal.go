package linalg

import (
	"fmt"
	"math"
)

// GramSchmidt orthonormalizes the columns of m in place using the modified
// Gram–Schmidt procedure, which is numerically stabler than the classical
// variant. Columns that become (numerically) zero after subtracting earlier
// components are reported through the returned error; callers that generate
// random columns should redraw and retry.
func GramSchmidt(m *Matrix) error {
	const eps = 1e-12
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for k := 0; k < j; k++ {
			prev := m.Col(k)
			proj := Dot(col, prev)
			AxpyInPlace(col, -proj, prev)
		}
		if Normalize(col) < eps {
			return fmt.Errorf("linalg: column %d is linearly dependent", j)
		}
		m.SetCol(j, col)
	}
	return nil
}

// MaxColumnCoherence returns the largest absolute cosine between any pair of
// distinct columns of m. Orthonormal matrices score ~0; it is used by tests
// and by the projection package to validate near-orthogonality of random
// matrices.
func MaxColumnCoherence(m *Matrix) float64 {
	cols := make([][]float64, m.Cols)
	for j := range cols {
		cols[j] = m.Col(j)
	}
	var worst float64
	for a := 0; a < len(cols); a++ {
		for b := a + 1; b < len(cols); b++ {
			c := math.Abs(CosAngle(cols[a], cols[b]))
			if c > worst {
				worst = c
			}
		}
	}
	return worst
}

// NormalizeColumns rescales every column of m to unit length in place.
// Zero columns are left untouched.
func NormalizeColumns(m *Matrix) {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		if Normalize(col) > 0 {
			m.SetCol(j, col)
		}
	}
}
