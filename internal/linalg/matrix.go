// Package linalg provides dense matrix and vector primitives used by the
// KeyBin2 pipeline: random projection application, Gram–Schmidt
// orthonormalization, and parallel matrix multiplication.
//
// The package is deliberately small and allocation-conscious. Matrices are
// stored in row-major order in a single backing slice so that projecting a
// block of points is a cache-friendly streaming pass.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned (wrapped) when operand dimensions are incompatible.
var ErrShape = errors.New("linalg: incompatible shapes")

// Matrix is a dense, row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows. The rows are
// copied.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrShape, i, len(row), c)
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// SetCol overwrites column j with v.
func (m *Matrix) SetCol(j int, v []float64) {
	if len(v) != m.Rows {
		panic(fmt.Sprintf("linalg: SetCol len %d != rows %d", len(v), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+j] = v[i]
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		ri := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range ri {
			out.Data[j*out.Cols+i] = v
		}
	}
	return out
}

// Equal reports whether a and b have the same shape and elements within tol.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// Mul computes a×b and stores it in dst (allocating when dst is nil).
// a is r×k, b is k×c, dst is r×c. It returns dst.
func Mul(dst, a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("%w: %dx%d × %dx%d", ErrShape, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if dst == nil {
		dst = NewMatrix(a.Rows, b.Cols)
	} else if dst.Rows != a.Rows || dst.Cols != b.Cols {
		return nil, fmt.Errorf("%w: dst %dx%d, want %dx%d", ErrShape, dst.Rows, dst.Cols, a.Rows, b.Cols)
	}
	mulRange(dst, a, b, 0, a.Rows)
	return dst, nil
}

// mulRange computes rows [lo,hi) of dst = a×b using an ikj loop order that
// streams over b's rows, which is cache-friendly for row-major storage.
func mulRange(dst, a, b *Matrix, lo, hi int) {
	n, c := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		di := dst.Data[i*c : (i+1)*c]
		for x := range di {
			di[x] = 0
		}
		ai := a.Data[i*n : (i+1)*n]
		k := 0
		for ; k+1 < n; k += 2 {
			a0, a1 := ai[k], ai[k+1]
			if a0 == 0 && a1 == 0 {
				continue
			}
			b0 := b.Data[k*c : (k+1)*c]
			b1 := b.Data[(k+1)*c : (k+2)*c : (k+2)*c]
			for j, bv := range b0 {
				di[j] += a0*bv + a1*b1[j]
			}
		}
		for ; k < n; k++ {
			aik := ai[k]
			if aik == 0 {
				continue
			}
			bk := b.Data[k*c : (k+1)*c]
			for j, bv := range bk {
				di[j] += aik * bv
			}
		}
	}
}

// MulVec computes m×v (v treated as a column vector), returning a new slice.
func MulVec(m *Matrix, v []float64) ([]float64, error) {
	if m.Cols != len(v) {
		return nil, fmt.Errorf("%w: %dx%d × vec(%d)", ErrShape, m.Rows, m.Cols, len(v))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), v)
	}
	return out, nil
}

// VecMul computes vᵀ×m (v treated as a row vector), returning a new slice of
// length m.Cols. This is the operation used to project a single data point
// through a projection matrix whose columns are the target directions.
func VecMul(v []float64, m *Matrix) ([]float64, error) {
	if m.Rows != len(v) {
		return nil, fmt.Errorf("%w: vec(%d) × %dx%d", ErrShape, len(v), m.Rows, m.Cols)
	}
	out := make([]float64, m.Cols)
	for k, vk := range v {
		if vk == 0 {
			continue
		}
		row := m.Data[k*m.Cols : (k+1)*m.Cols]
		for j, mv := range row {
			out[j] += vk * mv
		}
	}
	return out, nil
}

// Scale multiplies every element of m by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var ss float64
	for _, v := range m.Data {
		ss += v * v
	}
	return math.Sqrt(ss)
}

// String renders small matrices for debugging; large matrices are elided.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
