package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatalf("bad elements: %v", m)
	}
	if _, err := FromRows([][]float64{{1}, {2, 3}}); !errors.Is(err, ErrShape) {
		t.Fatalf("ragged rows: got %v, want ErrShape", err)
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Fatalf("empty input: %v %v", empty, err)
	}
}

func TestAtSetRowCol(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatal("Set/At mismatch")
	}
	m.Row(0)[1] = 3 // Row is a view
	if m.At(0, 1) != 3 {
		t.Fatal("Row must be a view")
	}
	col := m.Col(2)
	col[0] = 99 // Col is a copy
	if m.At(0, 2) == 99 {
		t.Fatal("Col must be a copy")
	}
	m.SetCol(2, []float64{10, 11})
	if m.At(0, 2) != 10 || m.At(1, 2) != 11 {
		t.Fatal("SetCol failed")
	}
}

func TestMulSmall(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	got, err := Mul(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{{19, 22}, {43, 50}})
	if !Equal(got, want, 1e-12) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestMulShapeError(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := Mul(nil, a, b); !errors.Is(err, ErrShape) {
		t.Fatalf("got %v, want ErrShape", err)
	}
	dst := NewMatrix(1, 1)
	c := NewMatrix(3, 2)
	if _, err := Mul(dst, a, c); !errors.Is(err, ErrShape) {
		t.Fatalf("bad dst: got %v, want ErrShape", err)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(5, 5)
	id := NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
		for j := 0; j < 5; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	got, _ := Mul(nil, a, id)
	if !Equal(got, a, 1e-12) {
		t.Fatal("A×I != A")
	}
	got2, _ := Mul(nil, id, a)
	if !Equal(got2, a, 1e-12) {
		t.Fatal("I×A != A")
	}
}

func TestMulVecAndVecMul(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mv, err := MulVec(m, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if mv[0] != 6 || mv[1] != 15 {
		t.Fatalf("MulVec got %v", mv)
	}
	vm, err := VecMul([]float64{1, 1}, m)
	if err != nil {
		t.Fatal(err)
	}
	if vm[0] != 5 || vm[1] != 7 || vm[2] != 9 {
		t.Fatalf("VecMul got %v", vm)
	}
	if _, err := MulVec(m, []float64{1}); err == nil {
		t.Fatal("MulVec shape mismatch not caught")
	}
	if _, err := VecMul([]float64{1}, m); err == nil {
		t.Fatal("VecMul shape mismatch not caught")
	}
}

// Property: VecMul(v, m) equals the corresponding row of Mul for a
// one-row matrix.
func TestVecMulMatchesMul(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, c := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewMatrix(n, c)
		v := make([]float64, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		a := &Matrix{Rows: 1, Cols: n, Data: v}
		want, _ := Mul(nil, a, m)
		got, _ := VecMul(v, m)
		for j := range got {
			if math.Abs(got[j]-want.Data[j]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("bad transpose shape %dx%d", mt.Rows, mt.Cols)
	}
	if mt.At(2, 1) != 6 || mt.At(0, 1) != 4 {
		t.Fatalf("bad transpose values %v", mt)
	}
	if !Equal(mt.T(), m, 0) {
		t.Fatal("double transpose should be identity")
	}
}

func TestCloneIndependence(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) == 42 {
		t.Fatal("Clone must not share storage")
	}
}

func TestScaleAndFrobenius(t *testing.T) {
	m, _ := FromRows([][]float64{{3, 4}})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("norm %v want 5", got)
	}
	m.Scale(2)
	if m.At(0, 1) != 8 {
		t.Fatal("Scale failed")
	}
}

// Property: (A×B)ᵀ == Bᵀ×Aᵀ.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, k, c := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a, b := NewMatrix(r, k), NewMatrix(k, c)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		ab, _ := Mul(nil, a, b)
		btat, _ := Mul(nil, b.T(), a.T())
		return Equal(ab.T(), btat, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMulMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewMatrix(257, 33)
	b := NewMatrix(33, 9)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	serial, err := Mul(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8, 0} {
		par, err := ParallelMul(nil, a, b, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !Equal(serial, par, 1e-9) {
			t.Fatalf("workers=%d: parallel result differs", workers)
		}
	}
}

func TestParallelMulShapeError(t *testing.T) {
	if _, err := ParallelMul(nil, NewMatrix(64, 3), NewMatrix(4, 2), 4); !errors.Is(err, ErrShape) {
		t.Fatalf("got %v, want ErrShape", err)
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small, _ := FromRows([][]float64{{1, 2}})
	if s := small.String(); s == "" {
		t.Fatal("empty String for small matrix")
	}
	big := NewMatrix(20, 20)
	if s := big.String(); s != "Matrix(20x20)" {
		t.Fatalf("large matrix should be elided, got %q", s)
	}
}
