package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func randomMatrix(r, c int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestGramSchmidtOrthonormal(t *testing.T) {
	m := randomMatrix(30, 8, 42)
	if err := GramSchmidt(m); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < m.Cols; j++ {
		if n := Norm(m.Col(j)); math.Abs(n-1) > 1e-10 {
			t.Fatalf("col %d norm %v", j, n)
		}
	}
	if c := MaxColumnCoherence(m); c > 1e-10 {
		t.Fatalf("coherence %v after Gram-Schmidt", c)
	}
}

func TestGramSchmidtDetectsDependence(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}}) // col2 = 2*col1
	if err := GramSchmidt(m); err == nil {
		t.Fatal("dependent columns must error")
	}
}

func TestMaxColumnCoherenceBounds(t *testing.T) {
	id := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		id.Set(i, i, 1)
	}
	if c := MaxColumnCoherence(id); c > 1e-12 {
		t.Fatalf("identity coherence %v", c)
	}
	par, _ := FromRows([][]float64{{1, 2}, {1, 2}})
	if c := MaxColumnCoherence(par); math.Abs(c-1) > 1e-12 {
		t.Fatalf("parallel coherence %v want 1", c)
	}
}

func TestNormalizeColumns(t *testing.T) {
	m, _ := FromRows([][]float64{{3, 0}, {4, 0}})
	NormalizeColumns(m)
	if n := Norm(m.Col(0)); math.Abs(n-1) > 1e-12 {
		t.Fatalf("col0 norm %v", n)
	}
	// zero column untouched
	if m.At(0, 1) != 0 || m.At(1, 1) != 0 {
		t.Fatal("zero column modified")
	}
}

// Gram–Schmidt preserves the span: projecting the original columns onto the
// orthonormal basis and back reconstructs them.
func TestGramSchmidtPreservesSpan(t *testing.T) {
	orig := randomMatrix(10, 4, 3)
	q := orig.Clone()
	if err := GramSchmidt(q); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < orig.Cols; j++ {
		col := orig.Col(j)
		recon := make([]float64, len(col))
		for k := 0; k < q.Cols; k++ {
			qk := q.Col(k)
			AxpyInPlace(recon, Dot(col, qk), qk)
		}
		if d := Dist(col, recon); d > 1e-8 {
			t.Fatalf("col %d reconstruction error %v", j, d)
		}
	}
}
