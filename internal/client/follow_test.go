package client_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"keybin2/internal/client"
	"keybin2/internal/server"
	"keybin2/internal/synth"
	"keybin2/internal/xrand"
)

// TestIngestFollowsPrimaryHint: a 421 carrying X-KB2-Primary is redeemed
// by ONE re-send to the hinted node — same bytes, same producer sequence —
// so a producer pointed at a demoted node keeps flowing after a failover.
func TestIngestFollowsPrimaryHint(t *testing.T) {
	var primaryBody []byte
	var primaryProducer, primarySeq string
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		primaryBody, _ = io.ReadAll(r.Body)
		primaryProducer = r.Header.Get("X-Producer")
		primarySeq = r.Header.Get("X-Batch-Seq")
		w.WriteHeader(http.StatusAccepted)
		io.WriteString(w, `{"queued":64,"seq":9}`)
	}))
	defer primary.Close()
	var followerHits atomic.Int64
	follower := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		followerHits.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Header().Set("X-KB2-Primary", primary.URL)
		http.Error(w, "replica: follower role", http.StatusMisdirectedRequest)
	}))
	defer follower.Close()

	c := client.New(follower.URL)
	c.SetProducer("prod-1")
	spec := synth.AutoMixture(2, 3, 6, 1, xrand.New(1))
	batch, _ := spec.Sample(64, xrand.New(2))
	ack, err := c.IngestTracked(context.Background(), batch)
	if err != nil {
		t.Fatalf("ingest through follower hint: %v", err)
	}
	if ack.Queued != 64 || ack.Seq != 9 {
		t.Fatalf("ack = %+v, want the primary's ack", ack)
	}
	if followerHits.Load() != 1 {
		t.Fatalf("follower hit %d times, want 1", followerHits.Load())
	}
	if !bytes.Equal(primaryBody, server.EncodeBatch(batch)) {
		t.Fatal("primary received different bytes than the original batch")
	}
	if primaryProducer != "prod-1" || primarySeq != "1" {
		t.Fatalf("primary saw producer=%q seq=%q — the hop must keep the idempotency identity",
			primaryProducer, primarySeq)
	}
}

// TestIngestNotPrimaryNoHint: a hintless 421 stays a typed error — there
// is nowhere to follow.
func TestIngestNotPrimaryNoHint(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		http.Error(w, "replica: follower role", http.StatusMisdirectedRequest)
	}))
	defer ts.Close()
	spec := synth.AutoMixture(2, 3, 6, 1, xrand.New(1))
	batch, _ := spec.Sample(8, xrand.New(2))
	err := client.New(ts.URL).Ingest(context.Background(), batch)
	var np *client.ErrNotPrimary
	if !errors.As(err, &np) {
		t.Fatalf("err = %v, want ErrNotPrimary", err)
	}
	if np.Primary != "" {
		t.Fatalf("Primary = %q, want empty", np.Primary)
	}
}

// TestIngestHintChaseBounded: two followers hinting at each other must
// produce exactly two requests and a typed error, not a loop.
func TestIngestHintChaseBounded(t *testing.T) {
	var hitsA, hitsB atomic.Int64
	var urlB string
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hitsA.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Header().Set("X-KB2-Primary", urlB)
		http.Error(w, "replica: follower role", http.StatusMisdirectedRequest)
	}))
	defer a.Close()
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hitsB.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Header().Set("X-KB2-Primary", a.URL)
		http.Error(w, "replica: follower role", http.StatusMisdirectedRequest)
	}))
	defer b.Close()
	urlB = b.URL

	spec := synth.AutoMixture(2, 3, 6, 1, xrand.New(1))
	batch, _ := spec.Sample(8, xrand.New(2))
	err := client.New(a.URL).Ingest(context.Background(), batch)
	var np *client.ErrNotPrimary
	if !errors.As(err, &np) {
		t.Fatalf("err = %v, want ErrNotPrimary", err)
	}
	if np.Primary != a.URL {
		t.Fatalf("Primary = %q, want the second hop's hint %q", np.Primary, a.URL)
	}
	if hitsA.Load() != 1 || hitsB.Load() != 1 {
		t.Fatalf("hits A=%d B=%d, want exactly one each", hitsA.Load(), hitsB.Load())
	}
}
