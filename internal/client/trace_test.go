package client

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"keybin2/internal/core"
	"keybin2/internal/linalg"
	"keybin2/internal/obs"
	"keybin2/internal/server"
)

// streamCfg builds the minimal daemon stream config the trace tests need:
// fixed raw ranges (no per-dim estimation) and a refit period far beyond
// what the tests ingest, so the writer path is deterministic.
func streamCfg(dims int) core.StreamConfig {
	rr := make([][2]float64, dims)
	for i := range rr {
		rr[i] = [2]float64{-12, 12}
	}
	return core.StreamConfig{
		Config:    core.Config{Seed: 11, Trials: 2},
		Dims:      dims,
		RawRanges: rr,
		Period:    1 << 30,
	}
}

// decodeTraces parses a GET /trace body ({"traces":[...]}).
func decodeTraces(t *testing.T, r io.Reader) []obs.TraceJSON {
	t.Helper()
	var body struct {
		Traces []obs.TraceJSON `json:"traces"`
	}
	if err := json.NewDecoder(r).Decode(&body); err != nil {
		t.Fatalf("decode /trace: %v", err)
	}
	return body.Traces
}

// TestClientStampsTraceparent: every ingest and label request carries a
// well-formed traceparent header, each request names a distinct trace,
// and the ingest ack surfaces the trace ID the client stamped.
func TestClientStampsTraceparent(t *testing.T) {
	var mu sync.Mutex
	headers := map[string][]string{} // path → traceparent values, in order
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		headers[r.URL.Path] = append(headers[r.URL.Path], r.Header.Get("Traceparent"))
		mu.Unlock()
		switch r.URL.Path {
		case "/ingest":
			w.WriteHeader(http.StatusAccepted)
			w.Write([]byte(`{"queued":2,"seq":1}`))
		case "/label":
			w.Write([]byte(`{"labels":[0,0],"model_gen":1,"clusters":1}`))
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	defer ts.Close()

	c := New(ts.URL)
	batch := linalg.NewMatrix(2, 3)
	ctx := context.Background()

	ack, err := c.IngestSeq(ctx, batch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestSeq(ctx, batch, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Label(ctx, batch); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	var scs []obs.SpanContext
	for _, path := range []string{"/ingest", "/label"} {
		for _, tp := range headers[path] {
			h := http.Header{}
			h.Set(obs.TraceparentHeader, tp)
			sc, ok := obs.ExtractTraceparent(h)
			if !ok {
				t.Fatalf("%s carried malformed traceparent %q", path, tp)
			}
			scs = append(scs, sc)
		}
	}
	if len(scs) != 3 {
		t.Fatalf("saw %d traced requests, want 3", len(scs))
	}
	if scs[0].TraceID == scs[1].TraceID {
		t.Errorf("two ingests share trace id %s", scs[0].TraceID)
	}
	if ack.TraceID != scs[0].TraceID {
		t.Errorf("ack trace id %q != stamped %q", ack.TraceID, scs[0].TraceID)
	}
}

// TestIngestTraceJoinsDaemon: an ingest against a real daemon produces a
// daemon-side trace whose trace ID is the one the client's ack reports —
// the single-hop version of the cross-process reconstruction the router
// test does at fleet scale.
func TestIngestTraceJoinsDaemon(t *testing.T) {
	srv, err := server.New(server.Config{Stream: streamCfg(3)})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := New(ts.URL)
	batch := linalg.NewMatrix(4, 3)
	ack, err := c.IngestTracked(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if ack.TraceID == "" {
		t.Fatal("ack carries no trace id")
	}

	resp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	traces := decodeTraces(t, resp.Body)
	found := false
	for _, tr := range traces {
		if tr.TraceID == ack.TraceID {
			found = true
			if tr.ParentID == "" {
				t.Errorf("daemon trace %s has no parent span (should link to the client's)", tr.TraceID)
			}
			var names []string
			for _, sp := range tr.Spans {
				names = append(names, sp.Name)
			}
			if joined := strings.Join(names, ","); !strings.Contains(joined, "ingest") {
				t.Errorf("trace %s spans = %s", tr.TraceID, joined)
			}
		}
	}
	if !found {
		t.Fatalf("client trace id %s not found among %d daemon traces", ack.TraceID, len(traces))
	}
}
