package client_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"keybin2/internal/client"
	"keybin2/internal/cluster"
	"keybin2/internal/core"
	"keybin2/internal/server"
	"keybin2/internal/synth"
	"keybin2/internal/xrand"
)

func fixedRanges(n int, lo, hi float64) [][2]float64 {
	out := make([][2]float64, n)
	for i := range out {
		out[i] = [2]float64{lo, hi}
	}
	return out
}

func startDaemon(t *testing.T, dims, queueDepth int) (*server.Server, *client.Client) {
	t.Helper()
	srv, err := server.New(server.Config{
		Stream: core.StreamConfig{
			Config:    core.Config{Seed: 11, Trials: 2},
			Dims:      dims,
			RawRanges: fixedRanges(dims, -12, 12),
			Period:    250,
		},
		QueueDepth: queueDepth,
		RetryAfter: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Stop(ctx); err != nil {
			t.Errorf("stop: %v", err)
		}
	})
	return srv, client.New(ts.URL)
}

// TestIngestRetriesBackpressure pins the client's retry loop against a
// fake daemon that rejects twice before accepting.
func TestIngestRetriesBackpressure(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("X-Retry-After-Ms", "3")
			http.Error(w, "full", http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"queued":1}`))
	}))
	defer ts.Close()

	batch, _ := synth.AutoMixture(2, 3, 6, 1, xrand.New(1)).Sample(1, xrand.New(2))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := client.New(ts.URL).Ingest(ctx, batch); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d attempts, want 3 (two rejections + one accept)", got)
	}
}

// TestConcurrentLoad is the -race proof of the whole service: concurrent
// ingesters and label queriers against a live daemon, then model fetch and
// label agreement between daemon-side and client-side assignment.
func TestConcurrentLoad(t *testing.T) {
	const dims = 5
	srv, c := startDaemon(t, dims, 16)
	_ = srv

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	rep, err := client.RunLoad(ctx, c, client.LoadConfig{
		Points: 4000, Dims: dims, BatchSize: 100,
		Ingesters: 3, QueryWorkers: 3, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalSeen < 4000 {
		t.Fatalf("daemon saw %d of 4000 points", rep.FinalSeen)
	}
	if rep.FinalRefits == 0 || rep.FinalClusters == 0 {
		t.Fatalf("no live model after load: %+v", rep)
	}
	if rep.Queries == 0 {
		t.Fatal("query workers measured nothing")
	}
	if rep.IngestPointsPerSec <= 0 {
		t.Fatalf("throughput %v", rep.IngestPointsPerSec)
	}

	// The fetched model must label exactly like the daemon's /label.
	model, err := c.Model(ctx)
	if err != nil {
		t.Fatal(err)
	}
	probe, _ := synth.AutoMixture(4, dims, 6, 1, xrand.New(21)).Sample(128, xrand.New(23))
	remote, err := c.Label(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	labeled := 0
	for i := 0; i < probe.Rows; i++ {
		local, err := model.Assign(probe.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if local != remote.Labels[i] {
			t.Fatalf("point %d: local %d vs daemon %d", i, local, remote.Labels[i])
		}
		if local != cluster.Noise {
			labeled++
		}
	}
	if labeled == 0 {
		t.Fatal("every probe point is noise")
	}
	t.Logf("load: %.0f pts/s ingest, %d queries p50=%.2fms p99=%.2fms, %d refits, %d clusters, %d backpressure",
		rep.IngestPointsPerSec, rep.Queries, rep.QueryP50Ms, rep.QueryP99Ms,
		rep.FinalRefits, rep.FinalClusters, rep.Backpressure)
}

// TestLabelBeforeModel: a daemon that has not refitted yet answers
// all-noise with generation 0 instead of failing.
func TestLabelBeforeModel(t *testing.T) {
	srv, err := server.New(server.Config{
		Stream: core.StreamConfig{Config: core.Config{Seed: 3}, Dims: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)

	probe, _ := synth.AutoMixture(2, 3, 6, 1, xrand.New(4)).Sample(5, xrand.New(5))
	res, err := c.Label(context.Background(), probe)
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelGen != 0 {
		t.Fatalf("warmup daemon reports generation %d", res.ModelGen)
	}
	for _, l := range res.Labels {
		if l != cluster.Noise {
			t.Fatalf("warmup label %d", l)
		}
	}
}
