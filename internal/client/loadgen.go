package client

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"keybin2/internal/linalg"
	"keybin2/internal/server"
	"keybin2/internal/synth"
	"keybin2/internal/xrand"
)

// LoadConfig drives the load generator: concurrent ingesters pushing
// synthetic mixture batches while query workers hammer /label, measuring
// both sides of the single-writer/many-reader architecture at once.
type LoadConfig struct {
	// Points is the total ingest volume (default 100000).
	Points int
	// Dims must match the daemon's stream dimensionality (default 16).
	Dims int
	// BatchSize is points per ingest batch (default 512).
	BatchSize int
	// Ingesters is the number of concurrent ingest workers (default 4).
	Ingesters int
	// QueryWorkers label-query workers run for the whole ingest window
	// (default 2); QueryBatch is points per query (default 64).
	QueryWorkers int
	QueryBatch   int
	// Components is the synthetic mixture's cluster count (default 4).
	Components int
	// Seed drives the synthetic data (ingester i uses Seed+i).
	Seed int64
	// ReadAddrs are additional read endpoints — follower replicas. Label
	// queries are split round-robin across the primary and these, the
	// read-path scale-out the replication tier exists for; ingest always
	// goes to the primary.
	ReadAddrs []string
	// ProducerPrefix, when set, gives each ingest worker its OWN producer
	// identity ("<prefix>-<worker>") instead of sharing c's. Against a
	// shard router that partitions by producer, this is what spreads the
	// workers across the hash ring; against a single daemon it simply
	// means per-worker dedupe sequences.
	ProducerPrefix string
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Points <= 0 {
		c.Points = 100000
	}
	if c.Dims <= 0 {
		c.Dims = 16
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 512
	}
	if c.Ingesters <= 0 {
		c.Ingesters = 4
	}
	if c.QueryWorkers < 0 {
		c.QueryWorkers = 0
	} else if c.QueryWorkers == 0 {
		c.QueryWorkers = 2
	}
	if c.QueryBatch <= 0 {
		c.QueryBatch = 64
	}
	if c.Components <= 0 {
		c.Components = 4
	}
	return c
}

// LoadReport is the load generator's measurement, shaped for
// BENCH_keybin2.json.
type LoadReport struct {
	Points    int `json:"points"`
	Dims      int `json:"dims"`
	BatchSize int `json:"batch_size"`
	Ingesters int `json:"ingesters"`

	IngestSeconds      float64 `json:"ingest_seconds"`
	IngestPointsPerSec float64 `json:"ingest_points_per_sec"`
	// Backpressure counts 429 rejections the ingesters absorbed by
	// sleeping out the daemon's retry hint.
	Backpressure int64 `json:"backpressure_rejections"`

	QueryWorkers int `json:"query_workers"`
	// ReadEndpoints is how many nodes served label queries (1 + replicas).
	ReadEndpoints int     `json:"read_endpoints,omitempty"`
	Queries       int64   `json:"queries"`
	QueryP50Ms    float64 `json:"query_p50_ms"`
	QueryP95Ms    float64 `json:"query_p95_ms"`
	QueryP99Ms    float64 `json:"query_p99_ms"`

	FinalSeen     int64 `json:"final_seen"`
	FinalRefits   int64 `json:"final_refits"`
	FinalClusters int   `json:"final_clusters"`

	// SlowestIngestMs is the wall time of the slowest single ingest
	// request the run observed (retry loops included), and
	// SlowestIngestTrace the trace ID that request stamped — paste it
	// into GET /trace on the daemon (or router + shard) to see where the
	// time went, span by span.
	SlowestIngestMs    float64 `json:"slowest_ingest_ms"`
	SlowestIngestTrace string  `json:"slowest_ingest_trace,omitempty"`

	// MetricsDelta holds, for every monotone (_total) series on /metrics,
	// the increase observed across the load run — the daemon's own account
	// of what the run did (batches by outcome, WAL appends/fsyncs, refit
	// activity). Nil when the daemon predates /metrics or a scrape failed;
	// the load numbers above are measured client-side and stand alone.
	MetricsDelta map[string]float64 `json:"metrics_delta,omitempty"`
}

// RunLoad ingests cfg.Points synthetic points through c while concurrently
// querying labels, waits for the daemon to apply everything, and reports
// throughput and latency. Queries run against the live snapshot for the
// whole ingest window — the report's latency percentiles therefore include
// queries answered while refits were happening underneath.
func RunLoad(ctx context.Context, c *Client, cfg LoadConfig) (LoadReport, error) {
	cfg = cfg.withDefaults()
	rep := LoadReport{
		Points: cfg.Points, Dims: cfg.Dims, BatchSize: cfg.BatchSize,
		Ingesters: cfg.Ingesters, QueryWorkers: cfg.QueryWorkers,
	}
	spec := synth.AutoMixture(cfg.Components, cfg.Dims, 6, 1, xrand.New(cfg.Seed))

	// Tolerant pre-scrape: metric deltas are a bonus, never a reason to
	// fail a load run against an older or metrics-less daemon.
	before, _ := c.Metrics(ctx)

	var backpressure atomic.Int64
	ingestCtx, stopQueries := context.WithCancel(ctx)
	defer stopQueries()

	// Pre-generate every payload before the clock starts: the run measures
	// the daemon's ingest path, not the generator's mixture sampler or the
	// wire encoder. Ingest batches are encoded to wire form once (retries
	// resend the same bytes); each query worker cycles a small pool of
	// pre-sampled batches.
	type rawBatch struct {
		raw  []byte
		rows int
	}
	shards := make([][]rawBatch, cfg.Ingesters)
	for w := 0; w < cfg.Ingesters; w++ {
		lo, hi := synth.Shard(cfg.Points, cfg.Ingesters, w)
		rng := xrand.New(cfg.Seed + int64(w))
		for n := hi - lo; n > 0; {
			sz := cfg.BatchSize
			if sz > n {
				sz = n
			}
			batch, _ := spec.Sample(sz, rng)
			shards[w] = append(shards[w], rawBatch{raw: server.EncodeBatch(batch), rows: sz})
			n -= sz
		}
	}
	const queryPool = 8
	queryBatches := make([][]*linalg.Matrix, cfg.QueryWorkers)
	for q := 0; q < cfg.QueryWorkers; q++ {
		rng := xrand.New(cfg.Seed + 1000 + int64(q))
		for i := 0; i < queryPool; i++ {
			batch, _ := spec.Sample(cfg.QueryBatch, rng)
			queryBatches[q] = append(queryBatches[q], batch)
		}
	}

	// Query workers: label pre-sampled mixture batches until ingest
	// finishes. With ReadAddrs set the workers are spread round-robin over
	// the primary and the replicas, so the latency percentiles measure the
	// scaled-out read path.
	readers := []*Client{c}
	for _, addr := range cfg.ReadAddrs {
		readers = append(readers, New(addr))
	}
	rep.ReadEndpoints = len(readers)
	var qwg sync.WaitGroup
	latCh := make(chan []float64, cfg.QueryWorkers)
	var queryErr atomic.Pointer[error]
	for q := 0; q < cfg.QueryWorkers; q++ {
		qwg.Add(1)
		go func(q int) {
			defer qwg.Done()
			reader := readers[q%len(readers)]
			var lats []float64
			for i := 0; ingestCtx.Err() == nil; i++ {
				batch := queryBatches[q][i%queryPool]
				t0 := time.Now()
				if _, err := reader.Label(ingestCtx, batch); err != nil {
					if ingestCtx.Err() == nil {
						queryErr.Store(&err)
					}
					break
				}
				lats = append(lats, float64(time.Since(t0).Microseconds())/1000)
			}
			latCh <- lats
		}(q)
	}

	// Ingest workers: split the volume, absorb backpressure through the
	// client's bounded jittered retry loop (each rejection counted, not
	// hidden). Retries reuse the batch's producer sequence, so even under
	// heavy backpressure no batch can be double-applied.
	pol := RetryPolicy{
		MaxAttempts: 50, // load runs saturate on purpose; be patient, not infinite
		OnRetry:     func(int, time.Duration, error) { backpressure.Add(1) },
	}.withDefaults()
	start := time.Now()
	var iwg sync.WaitGroup
	var ingestErr atomic.Pointer[error]
	var slowMu sync.Mutex
	var slowestDur time.Duration
	var slowestTrace string
	for w := 0; w < cfg.Ingesters; w++ {
		if len(shards[w]) == 0 {
			continue
		}
		sender := c
		if cfg.ProducerPrefix != "" {
			// Per-worker producer: own identity, own sequence counter,
			// shared transport (the connection pool is per-host anyway).
			sender = &Client{base: c.base, hc: c.hc, retry: c.retry,
				producer: fmt.Sprintf("%s-%d", cfg.ProducerPrefix, w)}
		}
		iwg.Add(1)
		go func(w int, sender *Client) {
			defer iwg.Done()
			for _, b := range shards[w] {
				if ctx.Err() != nil {
					return
				}
				var pseq uint64
				if sender.Producer() != "" {
					pseq = sender.NextBatchSeq()
				}
				t0 := time.Now()
				ack, err := sender.ingestRawRetry(ctx, b.raw, b.rows, pseq, pol)
				if err != nil {
					if ctx.Err() == nil {
						ingestErr.Store(&err)
					}
					return
				}
				d := time.Since(t0)
				slowMu.Lock()
				if d > slowestDur {
					slowestDur, slowestTrace = d, ack.TraceID
				}
				slowMu.Unlock()
			}
		}(w, sender)
	}
	iwg.Wait()
	ingestWall := time.Since(start)
	stopQueries()
	qwg.Wait()

	if p := ingestErr.Load(); p != nil {
		return rep, fmt.Errorf("load: ingest: %w", *p)
	}
	if p := queryErr.Load(); p != nil {
		return rep, fmt.Errorf("load: query: %w", *p)
	}

	var lats []float64
	for q := 0; q < cfg.QueryWorkers; q++ {
		lats = append(lats, <-latCh...)
	}
	sort.Float64s(lats)
	rep.Queries = int64(len(lats))
	rep.QueryP50Ms = percentile(lats, 0.50)
	rep.QueryP95Ms = percentile(lats, 0.95)
	rep.QueryP99Ms = percentile(lats, 0.99)
	rep.Backpressure = backpressure.Load()
	rep.SlowestIngestMs = float64(slowestDur.Microseconds()) / 1000
	rep.SlowestIngestTrace = slowestTrace
	rep.IngestSeconds = ingestWall.Seconds()
	if rep.IngestSeconds > 0 {
		rep.IngestPointsPerSec = float64(cfg.Points) / rep.IngestSeconds
	}

	// The daemon acknowledged every batch; wait until the writer has
	// applied them so FinalSeen reflects the full volume.
	if err := c.WaitSeen(ctx, int64(cfg.Points)); err != nil {
		return rep, err
	}
	st, err := c.Stats(ctx)
	if err != nil {
		return rep, err
	}
	rep.FinalSeen = st.Seen
	rep.FinalRefits = st.Refits
	rep.FinalClusters = st.Clusters
	if before != nil {
		if after, err := c.Metrics(ctx); err == nil {
			rep.MetricsDelta = metricsDelta(before, after)
		}
	}
	return rep, nil
}

// metricsDelta keeps the increase of every counter (_total-suffixed)
// series between two scrapes. Gauges and histogram buckets are skipped:
// their point-in-time values don't subtract meaningfully.
func metricsDelta(before, after map[string]float64) map[string]float64 {
	d := make(map[string]float64)
	for k, v := range after {
		name := k
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if !strings.HasSuffix(name, "_total") {
			continue
		}
		if dv := v - before[k]; dv > 0 {
			d[k] = dv
		}
	}
	return d
}

// percentile returns the p-quantile of sorted values (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
