// Package client is the Go client for keybin2d: binary batched ingest
// with backpressure-aware retry, label and model queries served from the
// daemon's live snapshot, and a load generator that measures ingest
// throughput and query latency against a running daemon.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"keybin2/internal/core"
	"keybin2/internal/linalg"
	"keybin2/internal/server"
)

// ErrBackpressure reports an ingest batch the daemon refused because its
// queue was full; RetryAfter carries the daemon's backoff hint.
type ErrBackpressure struct {
	RetryAfter time.Duration
}

func (e *ErrBackpressure) Error() string {
	return fmt.Sprintf("client: daemon queue full, retry after %s", e.RetryAfter)
}

// Client talks to one keybin2d daemon.
type Client struct {
	base string
	hc   *http.Client
}

// New builds a client for the daemon at base (e.g. "http://127.0.0.1:7420").
func New(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// NewWithHTTPClient injects a custom http.Client (tests, timeouts).
func NewWithHTTPClient(base string, hc *http.Client) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

func (c *Client) post(ctx context.Context, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	return c.hc.Do(req)
}

func httpError(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("client: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
}

// IngestOnce submits one batch without retrying. A full daemon queue
// returns *ErrBackpressure.
func (c *Client) IngestOnce(ctx context.Context, batch *linalg.Matrix) error {
	resp, err := c.post(ctx, "/ingest", server.EncodeBatch(batch))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		io.Copy(io.Discard, resp.Body)
		return nil
	case http.StatusTooManyRequests:
		return &ErrBackpressure{RetryAfter: retryAfter(resp)}
	default:
		return httpError(resp)
	}
}

// retryAfter extracts the daemon's backoff hint: the millisecond header
// when present, else the RFC Retry-After seconds, else a fixed fallback.
func retryAfter(resp *http.Response) time.Duration {
	if ms, err := strconv.ParseInt(resp.Header.Get("X-Retry-After-Ms"), 10, 64); err == nil && ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
		return time.Duration(s) * time.Second
	}
	return 250 * time.Millisecond
}

// Ingest submits one batch, sleeping out backpressure rejections until the
// daemon accepts it or ctx expires. This is the in-situ producer loop in
// miniature: the simulation yields for RetryAfter instead of stalling
// inside a blocked send.
func (c *Client) Ingest(ctx context.Context, batch *linalg.Matrix) error {
	for {
		err := c.IngestOnce(ctx, batch)
		var bp *ErrBackpressure
		if !errors.As(err, &bp) {
			return err
		}
		select {
		case <-time.After(bp.RetryAfter):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// LabelResult carries /label's reply: per-point labels and the generation
// of the model that produced them (0 = warmup, all labels are noise).
type LabelResult struct {
	Labels   []int `json:"labels"`
	ModelGen int64 `json:"model_gen"`
	Clusters int   `json:"clusters"`
}

// Label asks the daemon to label a batch of raw points under its current
// model snapshot.
func (c *Client) Label(ctx context.Context, batch *linalg.Matrix) (LabelResult, error) {
	var out LabelResult
	resp, err := c.post(ctx, "/label", server.EncodeBatch(batch))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, httpError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, err
	}
	if len(out.Labels) != batch.Rows {
		return out, fmt.Errorf("client: %d labels for %d points", len(out.Labels), batch.Rows)
	}
	return out, nil
}

// Model fetches and decodes the daemon's current model snapshot.
func (c *Client) Model(ctx context.Context) (*core.Model, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/model", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return core.DecodeModel(blob)
}

// Stats fetches the daemon's counters.
func (c *Client) Stats(ctx context.Context) (server.Stats, error) {
	var out server.Stats
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/stats", nil)
	if err != nil {
		return out, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, httpError(resp)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// WaitSeen polls /stats until the daemon has applied at least n points or
// ctx expires — how a producer confirms its acknowledged-but-queued
// batches have landed in the model state.
func (c *Client) WaitSeen(ctx context.Context, n int64) error {
	for {
		st, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		if st.Seen >= n {
			return nil
		}
		select {
		case <-time.After(10 * time.Millisecond):
		case <-ctx.Done():
			return fmt.Errorf("client: daemon at %d of %d points: %w", st.Seen, n, ctx.Err())
		}
	}
}
