// Package client is the Go client for keybin2d: binary batched ingest
// with bounded, jittered backpressure retry, producer-tagged idempotent
// batches, label and model queries served from the daemon's live
// snapshot, and a load generator that measures ingest throughput and
// query latency against a running daemon.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"keybin2/internal/core"
	"keybin2/internal/linalg"
	"keybin2/internal/obs"
	"keybin2/internal/server"
	"keybin2/internal/xrand"
)

// ErrBackpressure reports an ingest batch the daemon refused because its
// queue was full; RetryAfter carries the daemon's backoff hint.
type ErrBackpressure struct {
	RetryAfter time.Duration
}

func (e *ErrBackpressure) Error() string {
	return fmt.Sprintf("client: daemon queue full, retry after %s", e.RetryAfter)
}

// ErrNotPrimary reports an ingest a follower replica refused (HTTP 421)
// and the client could not redeem: the client follows the follower's
// X-KB2-Primary hint for exactly one hop per request, so this error
// surfaces only when the follower had no hint to offer (Primary == "")
// or the hinted node itself answered 421 — a topology the caller must
// sort out, not something to retry into.
type ErrNotPrimary struct {
	Primary string
}

func (e *ErrNotPrimary) Error() string {
	return fmt.Sprintf("client: node is a follower replica; ingest must go to the primary at %s", e.Primary)
}

// ErrStaleEpoch reports an ingest rejected by epoch fencing (HTTP 412):
// the node answering is — or believes the request is — behind the
// cluster's fencing epoch. When the client carried a token newer than
// the node's epoch, the NODE is the stale party (a fenced or zombie
// ex-primary); Primary, when present, names the node's best-known
// leader. See internal/server/failover.go for the fencing invariants.
type ErrStaleEpoch struct {
	NodeEpoch    int64
	RequestEpoch int64
	Primary      string
}

func (e *ErrStaleEpoch) Error() string {
	return fmt.Sprintf("client: stale epoch (node %d, request %d, primary %q)",
		e.NodeEpoch, e.RequestEpoch, e.Primary)
}

// ErrRetriesExhausted reports an Ingest that gave up after
// RetryPolicy.MaxAttempts backpressure rejections. Unwrap yields the
// final *ErrBackpressure, so errors.As sees both.
type ErrRetriesExhausted struct {
	Attempts int
	Last     error
}

func (e *ErrRetriesExhausted) Error() string {
	return fmt.Sprintf("client: gave up after %d attempts: %v", e.Attempts, e.Last)
}

func (e *ErrRetriesExhausted) Unwrap() error { return e.Last }

// RetryPolicy bounds Ingest's backpressure retry loop. The zero value
// means defaults: 8 attempts, backoff starting at the daemon's hint and
// doubling to a 5s cap, ±20% jitter.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 8). Negative means retry until ctx expires — the old
	// unbounded behavior, now opt-in.
	MaxAttempts int
	// BaseBackoff floors the first retry wait (default: the daemon's
	// Retry-After hint, or 50ms when the hint is missing). Each further
	// rejection doubles the wait.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling (default 5s).
	MaxBackoff time.Duration
	// Jitter is the ± fraction applied to each wait (default 0.2) so a
	// fleet of producers rejected together doesn't retry together.
	Jitter float64
	// OnRetry, when set, observes each scheduled retry.
	OnRetry func(attempt int, wait time.Duration, err error)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 8
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	if p.Jitter <= 0 {
		p.Jitter = 0.2
	}
	return p
}

// IngestAck is the daemon's reply to an accepted batch.
type IngestAck struct {
	// Queued is the number of points admitted (0 for a duplicate).
	Queued int `json:"queued"`
	// Seq is the daemon-side WAL sequence (0 when the WAL is disabled or
	// the batch was a duplicate).
	Seq uint64 `json:"seq"`
	// Duplicate reports a batch the daemon had already acknowledged under
	// this producer sequence — a retry whose original ack was lost.
	Duplicate bool `json:"duplicate"`
	// Epoch is the primary's fencing epoch at ack time (0 = unmanaged).
	// The client adopts it as its token for subsequent ingests, which is
	// what fences a zombie ex-primary after a failover.
	Epoch int64 `json:"epoch,omitempty"`
	// TraceID is the distributed trace ID this client stamped on the
	// request (client-side, not part of the daemon's ack JSON): the key
	// for finding the batch's span tree on the daemon's — and, through a
	// router, the owning shard's — /trace endpoint.
	TraceID string `json:"-"`
}

// Client talks to one keybin2d daemon — or, with SetEndpoints, to a
// replica set: ingest rotates through the endpoint pool on transport
// errors, follower redirects, and stale-epoch rejections until it finds
// the live primary, re-discovering it across automatic failovers.
type Client struct {
	base     string
	hc       *http.Client
	retry    RetryPolicy
	producer string
	pseq     atomic.Uint64
	rng      atomic.Pointer[xrand.Stream] // jitter source (nil → seeded lazily)

	// Replica-set state: pool is the endpoint list (nil = single-node
	// mode), poolIdx the current cursor into it, epoch the newest fencing
	// epoch learned from acks/rejections — sent as the X-KB2-Epoch token
	// on every ingest so a zombie ex-primary answers 412 instead of
	// silently accepting the write.
	pool    atomic.Pointer[[]string]
	poolIdx atomic.Int64
	epoch   atomic.Int64
}

// New builds a client for the daemon at base (e.g. "http://127.0.0.1:7420").
// The transport's socket buffers are sized for ingest batches (tens of
// KB per request): with the default 4 KB buffers every batch body is
// copied and flushed in 4 KB slices, which shows up as measurable CPU at
// millions of points per second.
func New(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{
		Transport: &http.Transport{
			Proxy:               http.ProxyFromEnvironment,
			MaxIdleConnsPerHost: 16,
			WriteBufferSize:     128 << 10,
			ReadBufferSize:      64 << 10,
		},
	}}
}

// NewWithHTTPClient injects a custom http.Client (tests, timeouts).
func NewWithHTTPClient(base string, hc *http.Client) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// SetRetryPolicy replaces the backpressure retry policy used by Ingest
// and IngestTracked. Call before issuing requests.
func (c *Client) SetRetryPolicy(p RetryPolicy) { c.retry = p }

// SetProducer arms idempotent ingest: every tracked batch carries this
// producer id plus a monotonically increasing batch sequence, letting
// the daemon drop retries whose original ack was lost instead of
// double-counting their points. Call before issuing requests.
func (c *Client) SetProducer(id string) { c.producer = id }

// Producer returns the idempotency id set with SetProducer ("" = off).
func (c *Client) Producer() string { return c.producer }

// NextBatchSeq issues the next producer batch sequence. Ingest and
// IngestTracked call it implicitly; use it directly only with IngestSeq.
func (c *Client) NextBatchSeq() uint64 { return c.pseq.Add(1) }

// SetEndpoints switches the client into replica-set mode: ingest targets
// rotate through the given base URLs on transport errors, unredeemable
// follower redirects, and stale-epoch rejections (backpressure still
// backs off against the same endpoint — the primary is alive, just
// busy). A 421 hint naming a pool member jumps the cursor straight to
// it. Call before issuing requests; an empty list restores single-node
// mode.
func (c *Client) SetEndpoints(urls ...string) {
	if len(urls) == 0 {
		c.pool.Store(nil)
		return
	}
	eps := make([]string, len(urls))
	for i, u := range urls {
		eps[i] = strings.TrimRight(u, "/")
	}
	c.pool.Store(&eps)
	c.poolIdx.Store(0)
}

// SetKnownEpoch arms the client's fencing token directly — chaos
// harnesses use it to prove a revived zombie rejects a tokened write.
// Normal clients learn the epoch from acks and 412s instead.
func (c *Client) SetKnownEpoch(e int64) { c.epoch.Store(e) }

// KnownEpoch is the newest fencing epoch this client has learned (0 =
// none seen).
func (c *Client) KnownEpoch() int64 { return c.epoch.Load() }

// learnEpoch adopts a newer fencing epoch (monotone CAS max).
func (c *Client) learnEpoch(e int64) {
	for {
		cur := c.epoch.Load()
		if e <= cur || c.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// currentBase is the ingest target: the pool cursor in replica-set mode,
// the fixed base otherwise.
func (c *Client) currentBase() string {
	p := c.pool.Load()
	if p == nil || len(*p) == 0 {
		return c.base
	}
	eps := *p
	return eps[int(c.poolIdx.Load())%len(eps)]
}

// rotateEndpoint advances the pool cursor past a failed endpoint, unless
// another goroutine already moved it.
func (c *Client) rotateEndpoint(from string) {
	if p := c.pool.Load(); p != nil && len(*p) > 0 && c.currentBase() == from {
		c.poolIdx.Add(1)
	}
}

// adoptEndpoint points the pool cursor at a hinted primary when the hint
// is a pool member — the next ingest goes straight there.
func (c *Client) adoptEndpoint(hint string) {
	p := c.pool.Load()
	if p == nil {
		return
	}
	for i, u := range *p {
		if u == hint {
			c.poolIdx.Store(int64(i))
			return
		}
	}
}

func (c *Client) post(ctx context.Context, path string, body []byte, pseq uint64) (*http.Response, error) {
	return c.postTraced(ctx, c.base, path, body, pseq, obs.NewSpanContext())
}

// postTraced issues one POST stamped with the given span context as a
// traceparent header — every client request names its own distributed
// trace, which servers join so the request's server-side span tree is
// findable by the ID the client holds.
func (c *Client) postTraced(ctx context.Context, base, path string, body []byte, pseq uint64, sc obs.SpanContext) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	sc.Inject(req.Header)
	if c.producer != "" && pseq > 0 {
		req.Header.Set("X-Producer", c.producer)
		req.Header.Set("X-Batch-Seq", strconv.FormatUint(pseq, 10))
	}
	if path == "/ingest" {
		if e := c.epoch.Load(); e > 0 {
			// The fencing token: a node whose epoch is older than this
			// answers 412 instead of accepting the write (zombie fencing).
			req.Header.Set("X-KB2-Epoch", strconv.FormatInt(e, 10))
		}
	}
	return c.hc.Do(req)
}

// StatusError is a non-2xx HTTP response surfaced as an error. Callers
// that must branch on the code — the failover supervisor distinguishes
// an own-epoch 409 fence refusal from transport failure — unwrap it
// with errors.As; everything else just prints it.
type StatusError struct {
	Code   int    // HTTP status code
	Status string // e.g. "409 Conflict"
	Msg    string // trimmed response body (first 512 bytes)
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: %s: %s", e.Status, e.Msg)
}

func httpError(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return &StatusError{Code: resp.StatusCode, Status: resp.Status, Msg: strings.TrimSpace(string(msg))}
}

// IngestOnce submits one batch without retrying. A full daemon queue
// returns *ErrBackpressure. When a producer id is set, the batch gets a
// fresh sequence — so calling IngestOnce again with the same data is a
// NEW batch, not an idempotent retry; retries that must dedupe go
// through Ingest/IngestTracked or IngestSeq.
func (c *Client) IngestOnce(ctx context.Context, batch *linalg.Matrix) error {
	var pseq uint64
	if c.producer != "" {
		pseq = c.NextBatchSeq()
	}
	_, err := c.IngestSeq(ctx, batch, pseq)
	return err
}

// IngestSeq submits one batch tagged with an explicit producer sequence
// (0 = untagged), without retrying. Re-sending the same seq after a lost
// ack is safe: the daemon re-acks it as a duplicate.
func (c *Client) IngestSeq(ctx context.Context, batch *linalg.Matrix, pseq uint64) (IngestAck, error) {
	return c.IngestRawSeq(ctx, server.EncodeBatch(batch), batch.Rows, pseq)
}

// IngestRawSeq is IngestSeq for a batch already in wire form (see
// server.EncodeBatch). Producers that send the same batch repeatedly —
// or that prepare batches ahead of a timed window, like the load
// generator — encode once and resend the bytes; rows is the batch's row
// count, used only for the fallback ack. The daemon still validates the
// frame, so a malformed raw buffer is rejected, not mis-ingested.
func (c *Client) IngestRawSeq(ctx context.Context, raw []byte, rows int, pseq uint64) (IngestAck, error) {
	return c.ingestRawSeqTo(ctx, c.currentBase(), raw, rows, pseq)
}

func (c *Client) ingestRawSeqTo(ctx context.Context, base string, raw []byte, rows int, pseq uint64) (IngestAck, error) {
	ack, err := c.ingestRawTo(ctx, base, raw, rows, pseq)
	var np *ErrNotPrimary
	if errors.As(err, &np) && np.Primary != "" {
		// A follower told us who the primary is: follow the hint for ONE
		// hop with the identical bytes and sequence (the primary dedupes a
		// batch the follower somehow already forwarded). A second 421
		// surfaces as ErrNotPrimary — hint-chasing loops are a topology
		// bug, not something to absorb. In replica-set mode the cursor
		// jumps to a hinted pool member so later batches skip the hop.
		hint := strings.TrimRight(np.Primary, "/")
		c.adoptEndpoint(hint)
		return c.ingestRawTo(ctx, hint, raw, rows, pseq)
	}
	return ack, err
}

func (c *Client) ingestRawTo(ctx context.Context, base string, raw []byte, rows int, pseq uint64) (IngestAck, error) {
	var ack IngestAck
	sc := obs.NewSpanContext()
	resp, err := c.postTraced(ctx, base, "/ingest", raw, pseq, sc)
	if err != nil {
		return ack, err
	}
	ack.TraceID = sc.TraceID
	defer resp.Body.Close()
	if v := resp.Header.Get("X-KB2-Epoch"); v != "" {
		// Any epoch the fleet shows us — on acks, redirects, or fencing
		// rejections — arms the token for subsequent ingests.
		if e, perr := strconv.ParseInt(v, 10, 64); perr == nil {
			c.learnEpoch(e)
		}
	}
	switch resp.StatusCode {
	case http.StatusAccepted:
		if derr := json.NewDecoder(resp.Body).Decode(&ack); derr != nil {
			// The batch WAS accepted; a malformed ack body shouldn't turn
			// success into a retry (which would re-send the batch).
			ack = IngestAck{Queued: rows, TraceID: sc.TraceID}
		}
		c.learnEpoch(ack.Epoch)
		return ack, nil
	case http.StatusTooManyRequests:
		return ack, &ErrBackpressure{RetryAfter: retryAfter(resp)}
	case http.StatusMisdirectedRequest:
		return ack, &ErrNotPrimary{Primary: resp.Header.Get("X-KB2-Primary")}
	case http.StatusPreconditionFailed:
		se := &ErrStaleEpoch{}
		var body struct {
			NodeEpoch    int64  `json:"node_epoch"`
			RequestEpoch int64  `json:"request_epoch"`
			Primary      string `json:"primary"`
		}
		if derr := json.NewDecoder(resp.Body).Decode(&body); derr == nil {
			se.NodeEpoch, se.RequestEpoch, se.Primary = body.NodeEpoch, body.RequestEpoch, body.Primary
			c.learnEpoch(body.NodeEpoch)
		}
		return ack, se
	default:
		return ack, httpError(resp)
	}
}

// retryAfter extracts the daemon's backoff hint: the millisecond header
// when present, else the RFC Retry-After seconds, else a fixed fallback.
func retryAfter(resp *http.Response) time.Duration {
	if ms, err := strconv.ParseInt(resp.Header.Get("X-Retry-After-Ms"), 10, 64); err == nil && ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
		return time.Duration(s) * time.Second
	}
	return 250 * time.Millisecond
}

// jitter scales wait by 1±policy.Jitter.
func (c *Client) jitter(wait time.Duration, frac float64) time.Duration {
	rng := c.rng.Load()
	if rng == nil {
		rng = xrand.New(time.Now().UnixNano())
		if !c.rng.CompareAndSwap(nil, rng) {
			rng = c.rng.Load()
		}
	}
	f := 1 + frac*(2*rng.Float64()-1)
	return time.Duration(float64(wait) * f)
}

// Ingest submits one batch, absorbing backpressure with bounded, jittered
// exponential backoff (see RetryPolicy). Every retry re-sends the SAME
// producer sequence, so a daemon that accepted the batch but lost the ack
// dedupes the re-send. This is the in-situ producer loop in miniature:
// the simulation yields for the backoff instead of stalling inside a
// blocked send — and gives up, loudly, instead of spinning forever
// against a wedged daemon.
func (c *Client) Ingest(ctx context.Context, batch *linalg.Matrix) error {
	_, err := c.IngestTracked(ctx, batch)
	return err
}

// IngestTracked is Ingest returning the daemon's ack (WAL sequence,
// duplicate flag).
func (c *Client) IngestTracked(ctx context.Context, batch *linalg.Matrix) (IngestAck, error) {
	var pseq uint64
	if c.producer != "" {
		pseq = c.NextBatchSeq()
	}
	return c.ingestRetry(ctx, batch, pseq, c.retry.withDefaults())
}

// ingestRetry is the bounded-backoff send loop shared by IngestTracked
// and the load generator. p must already have defaults applied. The
// batch is encoded once; retries resend the same bytes.
func (c *Client) ingestRetry(ctx context.Context, batch *linalg.Matrix, pseq uint64, p RetryPolicy) (IngestAck, error) {
	return c.ingestRawRetry(ctx, server.EncodeBatch(batch), batch.Rows, pseq, p)
}

// ingestRawRetry is ingestRetry over pre-encoded wire bytes. In
// single-node mode only backpressure is retried, as ever. In replica-set
// mode (SetEndpoints) the loop additionally rotates to the next pool
// endpoint on transport errors, unredeemed follower redirects, and
// stale-epoch rejections — the primary re-discovery that rides out an
// automatic failover — under the same bounded, jittered backoff.
func (c *Client) ingestRawRetry(ctx context.Context, raw []byte, rows int, pseq uint64, p RetryPolicy) (IngestAck, error) {
	wait := time.Duration(0)
	for attempt := 1; ; attempt++ {
		base := c.currentBase()
		ack, err := c.ingestRawSeqTo(ctx, base, raw, rows, pseq)
		if err == nil {
			return ack, nil
		}
		var bp *ErrBackpressure
		switch {
		case errors.As(err, &bp):
			// The endpoint is alive and is the primary — back off against
			// it, never rotate away from it.
		case c.rotatableError(ctx, err):
			c.rotateEndpoint(base)
		default:
			return ack, err
		}
		if ctx.Err() != nil {
			return ack, ctx.Err()
		}
		if p.MaxAttempts > 0 && attempt >= p.MaxAttempts {
			return ack, &ErrRetriesExhausted{Attempts: attempt, Last: err}
		}
		if wait == 0 {
			if bp != nil {
				wait = bp.RetryAfter
			}
			if wait < p.BaseBackoff {
				wait = p.BaseBackoff
			}
		} else {
			wait *= 2
		}
		if wait > p.MaxBackoff {
			wait = p.MaxBackoff
		}
		sleep := c.jitter(wait, p.Jitter)
		if p.OnRetry != nil {
			p.OnRetry(attempt, sleep, err)
		}
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return ack, ctx.Err()
		}
	}
}

// rotatableError reports whether an ingest failure should move a
// replica-set client to the next pool endpoint: the node is down
// (transport error), not the primary (unredeemed 421), or fenced behind
// the cluster epoch (412). Only meaningful in pool mode. Transport
// timeouts rotate too — a black-holed endpoint looks exactly like one —
// so the only excluded case is the caller's own context expiring, which
// is checked against ctx itself (net/http timeout errors also match
// errors.Is(err, context.DeadlineExceeded), so matching on the error
// would misread a dead endpoint as a caller cancellation).
func (c *Client) rotatableError(ctx context.Context, err error) bool {
	if p := c.pool.Load(); p == nil || len(*p) < 2 {
		return false
	}
	var np *ErrNotPrimary
	var se *ErrStaleEpoch
	var ue *url.Error
	return errors.As(err, &np) || errors.As(err, &se) ||
		(errors.As(err, &ue) && ctx.Err() == nil)
}

// LabelResult carries /label's reply: per-point labels and the generation
// of the model that produced them (0 = warmup, all labels are noise).
type LabelResult struct {
	Labels   []int `json:"labels"`
	ModelGen int64 `json:"model_gen"`
	Clusters int   `json:"clusters"`
}

// Label asks the daemon to label a batch of raw points under its current
// model snapshot.
func (c *Client) Label(ctx context.Context, batch *linalg.Matrix) (LabelResult, error) {
	var out LabelResult
	resp, err := c.post(ctx, "/label", server.EncodeBatch(batch), 0)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, httpError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, err
	}
	if len(out.Labels) != batch.Rows {
		return out, fmt.Errorf("client: %d labels for %d points", len(out.Labels), batch.Rows)
	}
	return out, nil
}

// Model fetches and decodes the daemon's current model snapshot.
func (c *Client) Model(ctx context.Context) (*core.Model, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/model", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return core.DecodeModel(blob)
}

// Stats fetches the daemon's counters.
func (c *Client) Stats(ctx context.Context) (server.Stats, error) {
	var out server.Stats
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/stats", nil)
	if err != nil {
		return out, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, httpError(resp)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Metrics scrapes the daemon's /metrics endpoint and returns the parsed
// sample values keyed by series identity — e.g.
// "keybin2d_ingest_accepted_points_total" or
// `keybin2d_ingest_batches_total{result="accepted"}`. Histograms appear
// expanded as their _bucket/_sum/_count series.
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	return obs.ParseExposition(resp.Body)
}

// Ready reports the daemon's /readyz verdict: nil when ready, an error
// describing why not (draining, wedged WAL) otherwise.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Promote asks a follower replica to become the primary (POST /promote),
// returning its applied WAL sequence — the horizon the new primary will
// number writes from. The node mints the next fencing epoch itself. A
// node that is already a primary answers 409, which surfaces as an
// error.
func (c *Client) Promote(ctx context.Context) (uint64, error) {
	seq, _, err := c.PromoteEpoch(ctx, 0)
	return seq, err
}

// PromoteEpoch is Promote with an explicit fencing epoch (0 = let the
// node mint current+1): the supervisor's election path, where the epoch
// is chosen centrally so the new primary outranks every fenced loser.
// Returns the promoted node's applied sequence and its (now current)
// epoch. The client adopts the epoch as its own token.
func (c *Client) PromoteEpoch(ctx context.Context, epoch int64) (uint64, int64, error) {
	path := "/promote"
	if epoch > 0 {
		path += "?epoch=" + strconv.FormatInt(epoch, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, nil)
	if err != nil {
		return 0, 0, err
	}
	obs.NewSpanContext().Inject(req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, httpError(resp)
	}
	var out struct {
		AppliedSeq uint64 `json:"applied_seq"`
		Epoch      int64  `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, 0, err
	}
	c.learnEpoch(out.Epoch)
	return out.AppliedSeq, out.Epoch, nil
}

// Fence fences the node at the given epoch (POST /fence). With a primary
// URL, a fenced ex-primary demotes in place into a follower of it, and a
// follower re-points its tail there; without one the node is only cut
// off the write path. Used by the failover supervisor; idempotent at the
// same epoch.
func (c *Client) Fence(ctx context.Context, epoch int64, primary string) error {
	q := "/fence?epoch=" + strconv.FormatInt(epoch, 10)
	if primary != "" {
		q += "&primary=" + url.QueryEscape(strings.TrimRight(primary, "/"))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+q, nil)
	if err != nil {
		return err
	}
	obs.NewSpanContext().Inject(req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	c.learnEpoch(epoch)
	return nil
}

// AdoptEpoch raises the epoch of a CURRENT primary (POST /epoch) — the
// supervisor's adoption path when it first manages an unmanaged group or
// re-learns a restarted primary. A follower answers 409.
func (c *Client) AdoptEpoch(ctx context.Context, epoch int64) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/epoch?epoch="+strconv.FormatInt(epoch, 10), nil)
	if err != nil {
		return err
	}
	obs.NewSpanContext().Inject(req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	c.learnEpoch(epoch)
	return nil
}

// WaitSeen polls /stats until the daemon has applied at least n points or
// ctx expires — how a producer confirms its acknowledged-but-queued
// batches have landed in the model state.
func (c *Client) WaitSeen(ctx context.Context, n int64) error {
	for {
		st, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		if st.Seen >= n {
			return nil
		}
		select {
		case <-time.After(10 * time.Millisecond):
		case <-ctx.Done():
			return fmt.Errorf("client: daemon at %d of %d points: %w", st.Seen, n, ctx.Err())
		}
	}
}
