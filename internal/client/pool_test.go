package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"keybin2/internal/client"
	"keybin2/internal/synth"
	"keybin2/internal/xrand"
)

// fakePrimary acks every ingest at the given epoch and records the
// epoch tokens requests carried.
func fakePrimary(t *testing.T, epoch string) (*httptest.Server, *atomic.Int64, func() string) {
	t.Helper()
	var hits atomic.Int64
	var lastToken atomic.Pointer[string]
	empty := ""
	lastToken.Store(&empty)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		tok := r.Header.Get("X-KB2-Epoch")
		lastToken.Store(&tok)
		io.Copy(io.Discard, r.Body)
		w.Header().Set("X-KB2-Epoch", epoch)
		w.WriteHeader(http.StatusAccepted)
		io.WriteString(w, `{"queued":8,"seq":1,"epoch":`+epoch+`}`)
	}))
	t.Cleanup(ts.Close)
	return ts, &hits, func() string { return *lastToken.Load() }
}

func poolRetry() client.RetryPolicy {
	return client.RetryPolicy{MaxAttempts: 6, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
}

// TestPoolRotatesOffFollower: the first endpoint answers an unredeemable
// 421 (no hint), so the pool client must rotate to the second and land
// the batch there, learning the primary's epoch from the ack.
func TestPoolRotatesOffFollower(t *testing.T) {
	follower := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		http.Error(w, "replica: follower role", http.StatusMisdirectedRequest)
	}))
	defer follower.Close()
	primary, hits, _ := fakePrimary(t, "2")

	c := client.New(follower.URL)
	c.SetEndpoints(follower.URL, primary.URL)
	c.SetRetryPolicy(poolRetry())
	spec := synth.AutoMixture(2, 3, 6, 1, xrand.New(1))
	batch, _ := spec.Sample(8, xrand.New(2))
	ack, err := c.IngestTracked(context.Background(), batch)
	if err != nil {
		t.Fatalf("pool ingest: %v", err)
	}
	if ack.Epoch != 2 || c.KnownEpoch() != 2 {
		t.Fatalf("ack epoch %d / known %d, want 2/2", ack.Epoch, c.KnownEpoch())
	}
	if hits.Load() != 1 {
		t.Fatalf("primary hits = %d, want 1", hits.Load())
	}
	// The cursor stuck: the next batch goes straight to the primary.
	if _, err := c.IngestTracked(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 2 {
		t.Fatalf("primary hits = %d, want 2 (no re-probe of the follower)", hits.Load())
	}
}

// TestPoolRotatesOffDeadEndpoint: a connection-refused endpoint is a
// rotatable transport error, not a terminal failure.
func TestPoolRotatesOffDeadEndpoint(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // the address now refuses connections
	primary, _, _ := fakePrimary(t, "3")

	c := client.New(deadURL)
	c.SetEndpoints(deadURL, primary.URL)
	c.SetRetryPolicy(poolRetry())
	spec := synth.AutoMixture(2, 3, 6, 1, xrand.New(1))
	batch, _ := spec.Sample(8, xrand.New(2))
	ack, err := c.IngestTracked(context.Background(), batch)
	if err != nil {
		t.Fatalf("pool ingest across dead endpoint: %v", err)
	}
	if ack.Epoch != 3 || c.KnownEpoch() != 3 {
		t.Fatalf("epoch learned = %d/%d, want 3", ack.Epoch, c.KnownEpoch())
	}
}

// TestPoolRotatesOffFencedZombie: a 412 from a fenced ex-primary rotates
// to the next endpoint; the request that hit the zombie carried the
// client's epoch token (that token IS what fenced it).
func TestPoolRotatesOffFencedZombie(t *testing.T) {
	var zombieToken atomic.Pointer[string]
	empty := ""
	zombieToken.Store(&empty)
	zombie := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tok := r.Header.Get("X-KB2-Epoch")
		zombieToken.Store(&tok)
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusPreconditionFailed)
		json.NewEncoder(w).Encode(map[string]any{
			"error": "stale epoch", "node_epoch": 1, "request_epoch": 2,
		})
	}))
	defer zombie.Close()
	primary, _, _ := fakePrimary(t, "2")

	c := client.New(zombie.URL)
	c.SetEndpoints(zombie.URL, primary.URL)
	c.SetRetryPolicy(poolRetry())
	c.SetKnownEpoch(2)
	spec := synth.AutoMixture(2, 3, 6, 1, xrand.New(1))
	batch, _ := spec.Sample(8, xrand.New(2))
	if _, err := c.IngestTracked(context.Background(), batch); err != nil {
		t.Fatalf("pool ingest across fenced zombie: %v", err)
	}
	if got := *zombieToken.Load(); got != "2" {
		t.Fatalf("zombie saw token %q, want 2", got)
	}
}

// TestStaleEpochIsTerminalWithoutPool: in single-node mode a 412 is a
// typed terminal error carrying the node's self-description — there is
// nowhere to rotate.
func TestStaleEpochIsTerminalWithoutPool(t *testing.T) {
	var hits atomic.Int64
	zombie := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusPreconditionFailed)
		json.NewEncoder(w).Encode(map[string]any{
			"error": "stale epoch", "node_epoch": 4, "request_epoch": 7, "primary": "http://elsewhere",
		})
	}))
	defer zombie.Close()

	c := client.New(zombie.URL)
	c.SetRetryPolicy(poolRetry())
	c.SetKnownEpoch(7)
	spec := synth.AutoMixture(2, 3, 6, 1, xrand.New(1))
	batch, _ := spec.Sample(8, xrand.New(2))
	_, err := c.IngestTracked(context.Background(), batch)
	var se *client.ErrStaleEpoch
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want ErrStaleEpoch", err)
	}
	if se.NodeEpoch != 4 || se.RequestEpoch != 7 || se.Primary != "http://elsewhere" {
		t.Fatalf("stale-epoch detail = %+v", se)
	}
	if hits.Load() != 1 {
		t.Fatalf("zombie hit %d times, want 1 (terminal, not retried)", hits.Load())
	}
	if c.KnownEpoch() != 7 {
		t.Fatalf("known epoch = %d; a LOWER node epoch must never regress the token", c.KnownEpoch())
	}
}

// TestAdoptEndpointOnHint: when a pool member's 421 hint names another
// pool member, the cursor jumps there — later batches skip the extra hop.
func TestAdoptEndpointOnHint(t *testing.T) {
	primary, hits, _ := fakePrimary(t, "1")
	follower := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("X-KB2-Primary", primary.URL)
		http.Error(w, "replica: follower role", http.StatusMisdirectedRequest)
	}))
	defer follower.Close()

	c := client.New(follower.URL)
	c.SetEndpoints(follower.URL, primary.URL)
	c.SetRetryPolicy(poolRetry())
	spec := synth.AutoMixture(2, 3, 6, 1, xrand.New(1))
	batch, _ := spec.Sample(8, xrand.New(2))
	if _, err := c.IngestTracked(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestTracked(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 2 {
		t.Fatalf("primary hits = %d, want 2 (second batch went direct)", hits.Load())
	}
}

// TestSetEndpointsEmptyRestoresSingleNode guards the escape hatch.
func TestSetEndpointsEmptyRestoresSingleNode(t *testing.T) {
	primary, hits, _ := fakePrimary(t, "1")
	c := client.New(primary.URL)
	c.SetEndpoints("http://127.0.0.1:1", primary.URL)
	c.SetEndpoints() // back to single-node: the base URL
	c.SetRetryPolicy(client.RetryPolicy{MaxAttempts: 1})
	spec := synth.AutoMixture(2, 3, 6, 1, xrand.New(1))
	batch, _ := spec.Sample(8, xrand.New(2))
	if _, err := c.IngestTracked(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 1 {
		t.Fatalf("primary hits = %d, want 1", hits.Load())
	}
}
