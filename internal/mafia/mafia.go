// Package mafia implements a MAFIA-style adaptive-grid subspace clustering
// comparator (Goil/Nagesh/Choudhary 1999). The paper attempted to compare
// KeyBin2 against GPUMAFIA and reports it "was unable to converge under our
// particular setup"; this implementation reproduces both the algorithm and
// that failure shape — the bottom-up candidate generation is O(cᵏ) in the
// number of dense dimensions, so a work budget aborts the fit with
// ErrBudget on inputs where the candidate lattice explodes.
//
// Pipeline: per-dimension fine histograms → adaptive bins (merging
// uniform-density neighbors) → dense 1-D units (density above α × the
// uniform expectation) → Apriori-style joins into higher-dimensional
// candidate dense units → support counting → connected dense units form
// clusters; points are labeled by the highest-dimensional cluster that
// contains them.
package mafia

import (
	"errors"
	"fmt"
	"sort"

	"keybin2/internal/cluster"
	"keybin2/internal/linalg"
	"keybin2/internal/unionfind"
)

// ErrBudget reports that candidate generation exceeded the work budget —
// the non-convergence mode the paper observed with GPUMAFIA.
var ErrBudget = errors.New("mafia: candidate lattice exceeded work budget (did not converge)")

// Config tunes a MAFIA fit.
type Config struct {
	// Alpha is the density threshold multiplier: an adaptive bin is dense
	// when its point count exceeds Alpha × the uniform expectation
	// (0 selects 1.5, the MAFIA paper's default).
	Alpha float64
	// FineBins is the resolution of the initial per-dimension histogram
	// (0 selects 100).
	FineBins int
	// MergeTol merges adjacent fine bins whose densities differ by less
	// than this fraction of the dimension's peak (0 selects 0.2).
	MergeTol float64
	// MaxCandidates bounds the total candidate dense units considered
	// before aborting with ErrBudget (0 selects 100000).
	MaxCandidates int
	// MaxSubspaceDims caps the dimensionality of reported subspace
	// clusters (0 selects 6).
	MaxSubspaceDims int
}

func (c Config) withDefaults() Config {
	if c.Alpha <= 0 {
		c.Alpha = 1.5
	}
	if c.FineBins <= 0 {
		c.FineBins = 100
	}
	if c.MergeTol <= 0 {
		c.MergeTol = 0.2
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 100000
	}
	if c.MaxSubspaceDims <= 0 {
		c.MaxSubspaceDims = 6
	}
	return c
}

// unit is a candidate dense unit: a conjunction of per-dimension adaptive
// bin ranges over a subspace. dims are sorted ascending.
type unit struct {
	dims []int
	bins []int // adaptive-bin index per dim, parallel to dims
}

func (u unit) key() string {
	b := make([]byte, 0, 4*len(u.dims))
	for i := range u.dims {
		b = append(b, byte(u.dims[i]), byte(u.dims[i]>>8), byte(u.bins[i]), byte(u.bins[i]>>8))
	}
	return string(b)
}

// adaptiveBin is one merged bin of a dimension's adaptive grid.
type adaptiveBin struct {
	lo, hi float64 // value range [lo, hi)
	count  int
	dense  bool
}

// Result is a fitted MAFIA model.
type Result struct {
	// Labels assigns each point to a cluster (cluster.Noise for none).
	Labels []int
	// Subspaces lists, per cluster, the dimensions of its subspace.
	Subspaces [][]int
	// Units counts the dense units found per lattice level (diagnostics).
	Units []int
}

// Fit runs MAFIA on the rows of data.
func Fit(data *linalg.Matrix, cfg Config) (*Result, error) {
	if data.Rows == 0 || data.Cols == 0 {
		return nil, fmt.Errorf("mafia: empty data %dx%d", data.Rows, data.Cols)
	}
	cfg = cfg.withDefaults()
	m, n := data.Rows, data.Cols

	// Adaptive grids per dimension.
	grids := make([][]adaptiveBin, n)
	for j := 0; j < n; j++ {
		grids[j] = adaptiveGrid(data.Col(j), cfg)
	}

	// Precompute each point's adaptive bin per dimension.
	binOf := make([][]int32, n)
	for j := 0; j < n; j++ {
		binOf[j] = make([]int32, m)
		col := grids[j]
		for i := 0; i < m; i++ {
			binOf[j][i] = int32(locateBin(col, data.At(i, j)))
		}
	}

	// Level 1: dense adaptive bins.
	var current []unit
	for j := 0; j < n; j++ {
		for b, ab := range grids[j] {
			if ab.dense {
				current = append(current, unit{dims: []int{j}, bins: []int{b}})
			}
		}
	}
	unitsPerLevel := []int{len(current)}
	best := append([]unit(nil), current...)
	totalCandidates := len(current)

	// Bottom-up lattice: join level-k units sharing k−1 (dim, bin) pairs.
	for level := 2; level <= cfg.MaxSubspaceDims && len(current) > 1; level++ {
		candidates := make(map[string]unit)
		for a := 0; a < len(current); a++ {
			for b := a + 1; b < len(current); b++ {
				joined, ok := join(current[a], current[b])
				if !ok {
					continue
				}
				candidates[joined.key()] = joined
				totalCandidates++
				if totalCandidates > cfg.MaxCandidates {
					return nil, fmt.Errorf("%w: >%d candidates at level %d", ErrBudget, cfg.MaxCandidates, level)
				}
			}
		}
		// Support counting + density test.
		var next []unit
		for _, u := range candidates {
			count := 0
			for i := 0; i < m; i++ {
				if contains(u, binOf, i) {
					count++
				}
			}
			expected := float64(m)
			for idx, j := range u.dims {
				g := grids[j]
				b := g[u.bins[idx]]
				span := g[len(g)-1].hi - g[0].lo
				if span > 0 {
					expected *= (b.hi - b.lo) / span
				}
			}
			if float64(count) > cfg.Alpha*expected && count > 0 {
				next = append(next, u)
			}
		}
		if len(next) == 0 {
			break
		}
		sort.Slice(next, func(i, j int) bool { return next[i].key() < next[j].key() })
		unitsPerLevel = append(unitsPerLevel, len(next))
		current = next
		best = next // highest level with dense units wins
	}

	labels, subspaces := clustersFromUnits(best, grids, binOf, m)
	return &Result{Labels: labels, Subspaces: subspaces, Units: unitsPerLevel}, nil
}

// adaptiveGrid builds a dimension's adaptive bins: a fine histogram whose
// adjacent bins merge while their densities stay within MergeTol of the
// peak-scaled difference, then a density test against the uniform
// expectation.
func adaptiveGrid(col []float64, cfg Config) []adaptiveBin {
	lo, hi := linalg.MinMax(col)
	if !(hi > lo) {
		hi = lo + 1
	}
	nb := cfg.FineBins
	w := (hi - lo) / float64(nb)
	counts := make([]int, nb)
	for _, v := range col {
		b := int((v - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nb {
			b = nb - 1
		}
		counts[b]++
	}
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	tol := cfg.MergeTol * float64(peak)

	var grid []adaptiveBin
	start := 0
	for b := 1; b <= nb; b++ {
		if b < nb && absInt(counts[b]-counts[start]) <= int(tol) {
			continue
		}
		total := 0
		for k := start; k < b; k++ {
			total += counts[k]
		}
		grid = append(grid, adaptiveBin{lo: lo + float64(start)*w, hi: lo + float64(b)*w, count: total})
		start = b
	}
	// Density test: uniform expectation scaled by the adaptive bin width.
	m := len(col)
	for i := range grid {
		expected := float64(m) * (grid[i].hi - grid[i].lo) / (hi - lo)
		grid[i].dense = float64(grid[i].count) > cfg.Alpha*expected
	}
	// Ensure full coverage for locateBin.
	grid[len(grid)-1].hi = hi + 1e-9
	return grid
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func locateBin(grid []adaptiveBin, v float64) int {
	idx := sort.Search(len(grid), func(i int) bool { return grid[i].hi > v })
	if idx >= len(grid) {
		idx = len(grid) - 1
	}
	return idx
}

// join merges two level-k units into a level-k+1 candidate when they agree
// on all but one dimension (the Apriori condition).
func join(a, b unit) (unit, bool) {
	if len(a.dims) != len(b.dims) {
		return unit{}, false
	}
	// Merge dim sets; they must overlap in exactly len-1 positions with
	// matching bins.
	dims := make([]int, 0, len(a.dims)+1)
	bins := make([]int, 0, len(a.dims)+1)
	i, j, mismatches := 0, 0, 0
	for i < len(a.dims) && j < len(b.dims) {
		switch {
		case a.dims[i] == b.dims[j]:
			if a.bins[i] != b.bins[j] {
				return unit{}, false
			}
			dims = append(dims, a.dims[i])
			bins = append(bins, a.bins[i])
			i++
			j++
		case a.dims[i] < b.dims[j]:
			dims = append(dims, a.dims[i])
			bins = append(bins, a.bins[i])
			i++
			mismatches++
		default:
			dims = append(dims, b.dims[j])
			bins = append(bins, b.bins[j])
			j++
			mismatches++
		}
		if mismatches > 2 {
			return unit{}, false
		}
	}
	for ; i < len(a.dims); i++ {
		dims = append(dims, a.dims[i])
		bins = append(bins, a.bins[i])
		mismatches++
	}
	for ; j < len(b.dims); j++ {
		dims = append(dims, b.dims[j])
		bins = append(bins, b.bins[j])
		mismatches++
	}
	if mismatches != 2 {
		return unit{}, false
	}
	return unit{dims: dims, bins: bins}, true
}

func contains(u unit, binOf [][]int32, point int) bool {
	for idx, j := range u.dims {
		if int(binOf[j][point]) != u.bins[idx] {
			return false
		}
	}
	return true
}

// clustersFromUnits unions face-adjacent dense units within the same
// subspace into clusters and labels points by membership.
func clustersFromUnits(units []unit, grids [][]adaptiveBin, binOf [][]int32, m int) ([]int, [][]int) {
	labels := make([]int, m)
	for i := range labels {
		labels[i] = cluster.Noise
	}
	if len(units) == 0 {
		return labels, nil
	}
	dsu := unionfind.New(len(units))
	for a := 0; a < len(units); a++ {
		for b := a + 1; b < len(units); b++ {
			if adjacent(units[a], units[b]) {
				dsu.Union(a, b)
			}
		}
	}
	unitCluster := dsu.Labels()
	// Label points: first matching unit wins (units are from the deepest
	// dense level, so matches are equally specific).
	for i := 0; i < m; i++ {
		for uIdx, u := range units {
			if contains(u, binOf, i) {
				labels[i] = unitCluster[uIdx]
				break
			}
		}
	}
	dense, k := cluster.Canonicalize(labels)
	subspaces := make([][]int, k)
	seen := make(map[int]bool)
	for uIdx, u := range units {
		c := unitCluster[uIdx]
		// find the canonical id of this unit's cluster via any member
		for i := 0; i < m; i++ {
			if contains(u, binOf, i) {
				cc := dense[i]
				if cc != cluster.Noise && !seen[c] {
					seen[c] = true
					subspaces[cc] = u.dims
				}
				break
			}
		}
	}
	return dense, subspaces
}

// adjacent reports whether two units of the same subspace share a face:
// equal bins everywhere except one dimension where the bins are
// consecutive.
func adjacent(a, b unit) bool {
	if len(a.dims) != len(b.dims) {
		return false
	}
	diff := 0
	for i := range a.dims {
		if a.dims[i] != b.dims[i] {
			return false
		}
		if a.bins[i] != b.bins[i] {
			if absInt(a.bins[i]-b.bins[i]) != 1 {
				return false
			}
			diff++
		}
	}
	return diff == 1
}
