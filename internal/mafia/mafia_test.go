package mafia

import (
	"errors"
	"testing"

	"keybin2/internal/cluster"
	"keybin2/internal/eval"
	"keybin2/internal/linalg"
	"keybin2/internal/synth"
	"keybin2/internal/xrand"
)

func TestFitTwoBlobs2D(t *testing.T) {
	spec := &synth.MixtureSpec{Dims: 2, Components: []synth.Component{
		{Mean: []float64{-5, -5}, Std: []float64{0.5, 0.5}, Weight: 1},
		{Mean: []float64{5, 5}, Std: []float64{0.5, 0.5}, Weight: 1},
	}}
	data, truth := spec.Sample(4000, xrand.New(1))
	res, err := Fit(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	labeled := 0
	for _, l := range res.Labels {
		if l != cluster.Noise {
			labeled++
		}
	}
	if float64(labeled)/float64(len(res.Labels)) < 0.7 {
		t.Fatalf("only %d/%d points labeled", labeled, len(res.Labels))
	}
	p, _, _ := eval.PrecisionRecallF1(res.Labels, truth)
	if p < 0.95 {
		t.Fatalf("precision %.3f", p)
	}
	if len(res.Units) == 0 || res.Units[0] == 0 {
		t.Fatalf("units per level %v", res.Units)
	}
}

func TestFitFindsSubspace(t *testing.T) {
	// Clusters live in dims 0-1; dims 2-3 are uniform noise. MAFIA should
	// report subspaces that include the informative dimensions.
	rng := xrand.New(2)
	m := 4000
	data := linalg.NewMatrix(m, 4)
	truth := make([]int, m)
	for i := 0; i < m; i++ {
		c := i % 2
		truth[i] = c
		center := -4.0
		if c == 1 {
			center = 4
		}
		data.Set(i, 0, rng.Gaussian(center, 0.4))
		data.Set(i, 1, rng.Gaussian(center, 0.4))
		data.Set(i, 2, rng.Uniform(-10, 10))
		data.Set(i, 3, rng.Uniform(-10, 10))
	}
	res, err := Fit(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subspaces) == 0 {
		t.Fatal("no subspace clusters")
	}
	informative := 0
	for _, dims := range res.Subspaces {
		for _, d := range dims {
			if d == 0 || d == 1 {
				informative++
				break
			}
		}
	}
	if informative == 0 {
		t.Fatalf("no cluster uses informative dims: %v", res.Subspaces)
	}
}

func TestBudgetAbort(t *testing.T) {
	// High-dimensional data with dense structure everywhere explodes the
	// candidate lattice; with a small budget the fit must abort — the
	// paper's GPUMAFIA "did not converge" behaviour.
	spec := synth.AutoMixture(4, 30, 6, 1, xrand.New(3))
	data, _ := spec.Sample(1000, xrand.New(4))
	_, err := Fit(data, Config{MaxCandidates: 50})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("got %v, want ErrBudget", err)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(linalg.NewMatrix(0, 2), Config{}); err == nil {
		t.Fatal("empty data must fail")
	}
}

func TestJoinCondition(t *testing.T) {
	a := unit{dims: []int{0, 1}, bins: []int{3, 5}}
	b := unit{dims: []int{0, 2}, bins: []int{3, 7}}
	j, ok := join(a, b)
	if !ok {
		t.Fatal("join should succeed on shared (0,3)")
	}
	if len(j.dims) != 3 || j.dims[0] != 0 || j.dims[1] != 1 || j.dims[2] != 2 {
		t.Fatalf("joined %v", j)
	}
	// Conflicting bin on the shared dim: no join.
	c := unit{dims: []int{0, 2}, bins: []int{4, 7}}
	if _, ok := join(a, c); ok {
		t.Fatal("conflicting join must fail")
	}
	// Disjoint dims at level 2 → would produce level 4: no join.
	d := unit{dims: []int{2, 3}, bins: []int{1, 1}}
	if _, ok := join(a, d); ok {
		t.Fatal("disjoint join must fail")
	}
}

func TestAdjacent(t *testing.T) {
	a := unit{dims: []int{0, 1}, bins: []int{3, 5}}
	b := unit{dims: []int{0, 1}, bins: []int{3, 6}}
	if !adjacent(a, b) {
		t.Fatal("consecutive bins share a face")
	}
	c := unit{dims: []int{0, 1}, bins: []int{3, 8}}
	if adjacent(a, c) {
		t.Fatal("distant bins are not adjacent")
	}
	d := unit{dims: []int{0, 2}, bins: []int{3, 5}}
	if adjacent(a, d) {
		t.Fatal("different subspaces are not adjacent")
	}
	e := unit{dims: []int{0, 1}, bins: []int{4, 6}}
	if adjacent(a, e) {
		t.Fatal("diagonal units are not adjacent")
	}
}

func TestAdaptiveGridCoverage(t *testing.T) {
	rng := xrand.New(5)
	col := make([]float64, 2000)
	for i := range col {
		col[i] = rng.Gaussian(0, 1)
	}
	grid := adaptiveGrid(col, Config{}.withDefaults())
	// Every value must locate into a bin, and counts must sum to len(col).
	total := 0
	for _, b := range grid {
		total += b.count
	}
	if total != len(col) {
		t.Fatalf("grid covers %d of %d points", total, len(col))
	}
	for _, v := range col {
		idx := locateBin(grid, v)
		if v < grid[idx].lo || v >= grid[idx].hi {
			t.Fatalf("value %v located to bin [%v,%v)", v, grid[idx].lo, grid[idx].hi)
		}
	}
	// The merge step must actually merge: far fewer bins than FineBins.
	if len(grid) >= 100 {
		t.Fatalf("adaptive grid has %d bins (no merging)", len(grid))
	}
	// Constant column: degenerate range handled.
	constant := make([]float64, 100)
	g2 := adaptiveGrid(constant, Config{}.withDefaults())
	if len(g2) == 0 {
		t.Fatal("constant column grid empty")
	}
}
