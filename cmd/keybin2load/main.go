// Command keybin2load drives a running keybin2d daemon: it pushes
// synthetic mixture traffic through concurrent ingesters while hammering
// /label, then reports ingest throughput and query latency as JSON (the
// measurement cmd/benchjson folds into BENCH_keybin2.json).
//
// Usage:
//
//	keybin2load -addr http://127.0.0.1:7420 [-points 100000] [-dims 16]
//	            [-batch 512] [-ingesters 4] [-query-workers 2] [-seed 1]
//	            [-o -] [-probe labels.json] [-no-load]
//	            [-cluster] [-producer-prefix load]
//
// -cluster points the run at a keybin2router instead of a daemon: each
// ingest worker gets its own producer identity (so the router's hash
// ring spreads them across shards) and the report gains a per-shard
// distribution block — batches/points per shard and the ring's balance
// coefficient.
//
// -probe exercises restart consistency: it labels a deterministic probe
// batch and writes the labels to the given file — or, when the file
// already exists, compares against the stored labels and exits nonzero on
// any mismatch. Run with -probe before killing the daemon and again (with
// -no-load) after restarting from its checkpoint to assert the restored
// model labels identically.
//
// -crash-cycles N switches to chaos mode: the tool spawns its own
// keybin2d process (-daemon path) with a WAL, kill -9s it mid-ingest N
// times, and fails loudly if any acknowledged batch is lost across the
// restarts or if a traffic-free restart changes probe labels:
//
//	keybin2load -crash-cycles 20 -daemon ./keybin2d [-fsync interval]
//	            [-crash-dir dir] [-crash-batches 6]
//
// -promote additionally builds a 1-primary/N-follower replica set each
// cycle and promotes a follower by hand after the kill; -failover goes
// the last step: an embedded failover supervisor watches the replica
// set, the harness kill -9s the primary and touches NOTHING — writes
// must resume through a pool-mode client via election alone, no acked
// batch may be lost, and the ex-primary revived on its original address
// must be rejected with the typed stale-epoch error and then demoted in
// place into a follower by a fresh supervisor.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"keybin2/internal/client"
	"keybin2/internal/synth"
	"keybin2/internal/xrand"
)

func main() {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:7420", "daemon base URL")
		points  = flag.Int("points", 100000, "points to ingest")
		dims    = flag.Int("dims", 16, "point dimensionality (must match daemon)")
		batch   = flag.Int("batch", 512, "points per ingest batch")
		ingest  = flag.Int("ingesters", 4, "concurrent ingest workers")
		queryW  = flag.Int("query-workers", 2, "concurrent /label workers during ingest")
		seed    = flag.Int64("seed", 1, "synthetic data seed")
		out     = flag.String("o", "-", "load report JSON path ('-' for stdout)")
		probe   = flag.String("probe", "", "probe-labels file: write if absent, compare if present")
		noLoad  = flag.Bool("no-load", false, "skip the load phase (probe/stats only)")
		timeout = flag.Duration("timeout", 10*time.Minute, "overall deadline")
		probeN  = flag.Int("probe-points", 256, "points in the consistency probe")

		crashCycles  = flag.Int("crash-cycles", 0, "chaos mode: kill -9 the daemon this many times mid-ingest")
		daemonPath   = flag.String("daemon", "./keybin2d", "keybin2d binary for -crash-cycles")
		crashDir     = flag.String("crash-dir", "", "chaos workdir (default: fresh temp dir, removed after)")
		crashBatches = flag.Int("crash-batches", 6, "batches acked per chaos cycle before the kill")
		fsync        = flag.String("fsync", "always", "WAL fsync policy for the chaos daemon")
		promote      = flag.Bool("promote", false, "with -crash-cycles: kill the PRIMARY of a replicated cluster and promote a follower instead of restarting")
		failoverM    = flag.Bool("failover", false, "with -crash-cycles: kill the PRIMARY under a failover supervisor and assert writes resume via election alone, with the revived zombie fenced")
		replicas     = flag.Int("replicas", 2, "follower replicas per cluster in -promote chaos mode")
		readAddrs    = flag.String("read-addrs", "", "comma-separated follower base URLs; label queries split across them and -addr")
		clusterMode  = flag.Bool("cluster", false, "-addr is a keybin2router: tag each ingester as its own producer and report the per-shard distribution")
		prodPrefix   = flag.String("producer-prefix", "", "per-worker producer id prefix (default with -cluster: \"load\"); spreads workers across a router's hash ring")
	)
	flag.Parse()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *crashCycles > 0 {
		var err error
		if *failoverM {
			err = runFailoverChaos(ctx, failoverChaosConfig{
				daemon: *daemonPath, cycles: *crashCycles, replicas: *replicas,
				dims: *dims, batch: *batch, perCycle: *crashBatches, seed: *seed,
				dir: *crashDir, fsync: *fsync,
			})
		} else if *promote {
			err = runReplicaChaos(ctx, replicaChaosConfig{
				daemon: *daemonPath, cycles: *crashCycles, replicas: *replicas,
				dims: *dims, batch: *batch, perCycle: *crashBatches, seed: *seed,
				dir: *crashDir, fsync: *fsync,
			})
		} else {
			err = runCrashCycles(ctx, crashConfig{
				daemon: *daemonPath, cycles: *crashCycles, dims: *dims,
				batch: *batch, perCycle: *crashBatches, seed: *seed,
				dir: *crashDir, fsync: *fsync,
			})
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "keybin2load:", err)
			os.Exit(1)
		}
		return
	}

	c := client.New(*addr)
	if !*noLoad {
		var reads []string
		if *readAddrs != "" {
			reads = strings.Split(*readAddrs, ",")
		}
		prefix := *prodPrefix
		if prefix == "" && *clusterMode {
			prefix = "load" // a router partitions by producer; workers need distinct ids
		}
		rep, err := client.RunLoad(ctx, c, client.LoadConfig{
			Points: *points, Dims: *dims, BatchSize: *batch,
			Ingesters: *ingest, QueryWorkers: *queryW, Seed: *seed,
			ReadAddrs: reads, ProducerPrefix: prefix,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "keybin2load:", err)
			os.Exit(1)
		}
		full := loadOutput{LoadReport: rep}
		if *clusterMode {
			cl, err := clusterDistribution(ctx, *addr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "keybin2load: cluster stats:", err)
			} else {
				full.Cluster = cl
			}
		}
		enc, _ := json.MarshalIndent(full, "", "  ")
		enc = append(enc, '\n')
		if *out == "-" {
			os.Stdout.Write(enc)
		} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "keybin2load:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ingest %.0f pts/s, query p50 %.2f ms p99 %.2f ms, %d refits, %d clusters\n",
			rep.IngestPointsPerSec, rep.QueryP50Ms, rep.QueryP99Ms, rep.FinalRefits, rep.FinalClusters)
		if full.Cluster != nil {
			fmt.Fprintf(os.Stderr, "cluster: %d/%d shards up, merge epoch %d, ring balance cv %.3f\n",
				full.Cluster.ShardsUp, full.Cluster.Shards, full.Cluster.MergeEpoch, full.Cluster.BalanceCV)
		}
	}
	if *probe != "" {
		if err := runProbe(ctx, c, *probe, *dims, *probeN, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "keybin2load:", err)
			os.Exit(1)
		}
	}
}

// probeRecord pins a deterministic batch's labels to disk so a second run
// can assert the daemon (possibly restarted from a checkpoint) still
// labels the same points the same way.
type probeRecord struct {
	Seed     int64 `json:"seed"`
	Dims     int   `json:"dims"`
	Labels   []int `json:"labels"`
	ModelGen int64 `json:"model_gen"`
}

func runProbe(ctx context.Context, c *client.Client, path string, dims, n int, seed int64) error {
	// The probe batch is derived from the seed alone, so any invocation
	// with equal flags regenerates identical points.
	spec := synth.AutoMixture(4, dims, 6, 1, xrand.New(seed))
	batch, _ := spec.Sample(n, xrand.New(seed+7))
	res, err := c.Label(ctx, batch)
	if err != nil {
		return err
	}
	if prev, err := os.ReadFile(path); err == nil {
		var want probeRecord
		if err := json.Unmarshal(prev, &want); err != nil {
			return fmt.Errorf("probe file %s: %w", path, err)
		}
		if want.Seed != seed || want.Dims != dims || len(want.Labels) != len(res.Labels) {
			return fmt.Errorf("probe file %s was written with different flags", path)
		}
		mismatch := 0
		for i := range want.Labels {
			if want.Labels[i] != res.Labels[i] {
				mismatch++
			}
		}
		if mismatch > 0 {
			return fmt.Errorf("probe: %d of %d labels changed across restart (gen %d → %d)",
				mismatch, len(want.Labels), want.ModelGen, res.ModelGen)
		}
		fmt.Fprintf(os.Stderr, "probe: %d labels consistent (gen %d → %d)\n",
			len(want.Labels), want.ModelGen, res.ModelGen)
		return nil
	}
	rec := probeRecord{Seed: seed, Dims: dims, Labels: res.Labels, ModelGen: res.ModelGen}
	enc, _ := json.MarshalIndent(rec, "", "  ")
	if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "probe: wrote %d labels (gen %d) to %s\n", len(res.Labels), res.ModelGen, path)
	return nil
}
