package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"keybin2/internal/client"
	"keybin2/internal/failover"
	"keybin2/internal/linalg"
	"keybin2/internal/server"
	"keybin2/internal/synth"
	"keybin2/internal/xrand"
)

// Failover chaos: the no-operator version of the promote cycles. Every
// cycle builds a 1-primary/N-follower cluster SUPERVISED by an embedded
// failover control plane, then kill -9s the primary mid-load and touches
// nothing: the supervisor must detect the death, elect the most
// caught-up follower under a new fencing epoch, and the pool-mode client
// must re-discover the new primary on its own. The invariants:
//
//  1. writes resume via election alone — the first post-kill ack lands
//     within a bounded window, carries the post-election epoch, and no
//     human (or harness) promoted anything,
//  2. no acked batch is lost: the elected primary's producer high-water
//     mark covers every 202 the harness holds, and its applied points
//     reach the acked volume,
//  3. the revived zombie is fenced: restarted on its ORIGINAL address
//     (epoch 0, still thinks it is a primary), a client carrying the
//     post-election epoch token gets the typed stale-epoch rejection
//     even with no supervisor running,
//  4. a FRESH supervisor re-learns the cluster epoch from the fleet —
//     no re-mint, no primary flap — and demotes the zombie in place
//     into a follower that converges on the new primary's history.

type failoverChaosConfig struct {
	daemon   string
	cycles   int
	replicas int
	dims     int
	batch    int // points per batch
	perCycle int // batches acked before the primary is killed
	seed     int64
	dir      string
	fsync    string
}

type failoverChaosReport struct {
	Cycles          int     `json:"cycles"`
	Replicas        int     `json:"replicas"`
	BatchesAcked    int64   `json:"batches_acked"`
	PointsAcked     int64   `json:"points_acked"`
	Elections       int64   `json:"elections"`
	WorstResumeMs   float64 `json:"worst_resume_ms"`
	ZombiesFenced   int     `json:"zombies_fenced"`
	ZombiesRejoined int     `json:"zombies_rejoined"`
	ProbeLabels     int     `json:"probe_labels"`
	ProbeModelGen   int64   `json:"probe_model_gen"`
}

// resumeWindow bounds how long writes may stall across a primary kill
// before the harness declares the election dead.
const resumeWindow = 45 * time.Second

func runFailoverChaos(ctx context.Context, fc failoverChaosConfig) error {
	if fc.cycles <= 0 {
		return nil
	}
	if fc.replicas < 2 {
		fc.replicas = 2 // an election needs somebody to win it
	}
	if fc.dir == "" {
		d, err := os.MkdirTemp("", "kb2failover-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(d)
		fc.dir = d
	} else if err := os.MkdirAll(fc.dir, 0o755); err != nil {
		return err
	}
	logF, err := os.Create(filepath.Join(fc.dir, "cluster.log"))
	if err != nil {
		return err
	}
	defer logF.Close()

	spec := synth.AutoMixture(4, fc.dims, 6, 1, xrand.New(fc.seed))
	probe, _ := spec.Sample(256, xrand.New(fc.seed+7))
	rng := xrand.New(fc.seed + 13)
	mkBatch := func() *linalg.Matrix {
		b, _ := spec.Sample(fc.batch, rng)
		return b
	}

	rep := failoverChaosReport{Cycles: fc.cycles, Replicas: fc.replicas}
	for cycle := 1; cycle <= fc.cycles; cycle++ {
		if err := runFailoverCycle(ctx, fc, cycle, logF, mkBatch, probe, &rep); err != nil {
			return fmt.Errorf("failover cycle %d: %w", cycle, err)
		}
	}

	enc, _ := json.MarshalIndent(rep, "", "  ")
	os.Stdout.Write(append(enc, '\n'))
	fmt.Fprintf(os.Stderr,
		"failover: %d cycles × (1 primary + %d followers), %d batches (%d points) acked, %d elections, worst resume %.0f ms, %d zombies fenced+rejoined, 0 lost\n",
		rep.Cycles, rep.Replicas, rep.BatchesAcked, rep.PointsAcked, rep.Elections, rep.WorstResumeMs, rep.ZombiesRejoined)
	return nil
}

func runFailoverCycle(ctx context.Context, fc failoverChaosConfig, cycle int, logF *os.File,
	mkBatch func() *linalg.Matrix, probe *linalg.Matrix, rep *failoverChaosReport) error {

	dir := filepath.Join(fc.dir, fmt.Sprintf("cycle%d", cycle))
	nodeDir := func(i int) string { return filepath.Join(dir, fmt.Sprintf("node%d", i)) }
	common := func(i int) []string {
		return []string{
			"-addr", "127.0.0.1:0",
			"-dims", strconv.Itoa(fc.dims),
			"-range", "-12,12",
			"-trials", "2",
			"-period", "1000",
			"-seed", strconv.FormatInt(fc.seed, 10),
			"-node-id", fmt.Sprintf("node%d", i),
			"-checkpoint", filepath.Join(nodeDir(i), "state.kb2s"),
			"-checkpoint-every", "300ms",
			"-wal-dir", filepath.Join(nodeDir(i), "wal"),
			"-fsync", fc.fsync,
			"-follow-poll", "250ms",
		}
	}

	primary, err := startNode(fc.daemon, logF, common(0)...)
	if err != nil {
		return err
	}
	primaryUp := true
	defer func() {
		if primaryUp {
			primary.kill()
		}
	}()
	primaryBase := "http://" + primary.addr
	if err := waitHealthy(ctx, primaryBase); err != nil {
		return err
	}

	bases := []string{primaryBase}
	followers := make([]*daemonProc, fc.replicas)
	for i := range followers {
		followers[i], err = startNode(fc.daemon, logF,
			append(common(i+1), "-follow", primaryBase)...)
		if err != nil {
			return err
		}
		defer followers[i].stop()
		base := "http://" + followers[i].addr
		bases = append(bases, base)
		if err := waitHealthy(ctx, base); err != nil {
			return err
		}
	}

	// The control plane. RecoverAfter 1 readmits the revived zombie on
	// its first answered probe, so the rejoin half of the cycle is quick.
	supLogf := func(format string, args ...any) {
		fmt.Fprintf(logF, "supervisor: "+format+"\n", args...)
	}
	sup, err := failover.New(failover.Config{
		Nodes:        bases,
		ProbeEvery:   150 * time.Millisecond,
		ProbeTimeout: time.Second,
		FailAfter:    3,
		RecoverAfter: 1,
		Logf:         supLogf,
	})
	if err != nil {
		return err
	}
	sup.Start()
	supUp := true
	defer func() {
		if supUp {
			sup.Stop()
		}
	}()
	if err := waitSupervisor(ctx, sup, func(st failover.Status) bool {
		return st.Primary == primaryBase && st.ClusterEpoch >= 1
	}, "adoption of the starting primary"); err != nil {
		return err
	}

	// The write path: one pool-mode client, endpoints = the whole replica
	// set, generous retries. Everything after this line — including
	// riding out the kill — goes through this client untouched.
	pc := client.NewWithHTTPClient(primaryBase, &http.Client{Timeout: 5 * time.Second})
	pc.SetEndpoints(bases...)
	pc.SetProducer("chaos")
	pc.SetRetryPolicy(client.RetryPolicy{
		MaxAttempts: 200, BaseBackoff: 50 * time.Millisecond, MaxBackoff: time.Second,
	})

	var ackedBatches uint64
	var ackedPoints int64
	sendAcked := func(pctx context.Context) (client.IngestAck, error) {
		ack, err := pc.IngestTracked(pctx, mkBatch())
		if err != nil {
			return ack, err
		}
		ackedBatches++
		ackedPoints += int64(fc.batch)
		rep.BatchesAcked++
		rep.PointsAcked += int64(fc.batch)
		return ack, nil
	}
	for i := 0; i < fc.perCycle; i++ {
		if _, err := sendAcked(ctx); err != nil {
			return fmt.Errorf("pre-kill ingest: %w", err)
		}
	}

	// Followers must be caught up before the kill: the election picks the
	// most advanced replayed horizon, and nothing acked may be beyond it.
	followerClients := make([]*client.Client, fc.replicas)
	for i, dp := range followers {
		followerClients[i] = client.NewWithHTTPClient("http://"+dp.addr, &http.Client{Timeout: 5 * time.Second})
		wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		err := followerClients[i].WaitSeen(wctx, ackedPoints)
		cancel()
		if err != nil {
			return fmt.Errorf("follower %d never converged to %d points: %w", i, ackedPoints, err)
		}
	}

	// The chaos event: kill -9, no drain — and from here on NOBODY calls
	// /promote but the supervisor.
	primary.kill()
	primaryUp = false
	killedAt := time.Now()
	fmt.Fprintf(os.Stderr, "failover: cycle %d killed primary at %d acked batches (%d points)\n",
		cycle, ackedBatches, ackedPoints)

	rctx, cancel := context.WithTimeout(ctx, resumeWindow)
	ack, err := sendAcked(rctx)
	cancel()
	if err != nil {
		return fmt.Errorf("writes did not resume via election alone within %s: %w", resumeWindow, err)
	}
	resume := time.Since(killedAt)
	if ms := float64(resume.Milliseconds()); ms > rep.WorstResumeMs {
		rep.WorstResumeMs = ms
	}
	if ack.Epoch < 2 {
		return fmt.Errorf("first post-kill ack carries epoch %d, want the post-election epoch ≥ 2", ack.Epoch)
	}
	newEpoch := ack.Epoch
	fmt.Fprintf(os.Stderr, "failover: cycle %d writes resumed %.0f ms after the kill at epoch %d\n",
		cycle, float64(resume.Milliseconds()), newEpoch)
	for i := 0; i < 3; i++ { // keep the post-election WAL moving
		if _, err := sendAcked(ctx); err != nil {
			return fmt.Errorf("post-election ingest: %w", err)
		}
	}

	// The supervisor's view must agree with the data path: a follower won,
	// and nothing acked died with the old primary.
	st := sup.Status()
	if st.Primary == primaryBase || st.Primary == "" {
		return fmt.Errorf("supervisor still names %q as primary after the kill", st.Primary)
	}
	if st.Elections < 1 {
		return fmt.Errorf("writes resumed but the supervisor reports %d elections", st.Elections)
	}
	rep.Elections += st.Elections
	newPrimaryBase := st.Primary
	npc := client.NewWithHTTPClient(newPrimaryBase, &http.Client{Timeout: 5 * time.Second})
	nst, err := npc.Stats(ctx)
	if err != nil {
		return err
	}
	if nst.Producers["chaos"] < ackedBatches {
		return fmt.Errorf("ACKED BATCH LOST IN FAILOVER: elected primary recovered producer seq %d, harness holds ack for %d",
			nst.Producers["chaos"], ackedBatches)
	}
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	err = npc.WaitSeen(wctx, ackedPoints)
	cancel()
	if err != nil {
		return fmt.Errorf("acked points missing on the elected primary: %w", err)
	}

	// Stop the supervisor BEFORE reviving the zombie: the first fencing
	// assertion must hold with no control plane around to help — client
	// epoch tokens alone keep the zombie out of the write path.
	sup.Stop()
	supUp = false

	zombie, err := startNode(fc.daemon, logF,
		append(common(0), "-addr", primary.addr)...) // the ORIGINAL address; later -addr wins
	if err != nil {
		return fmt.Errorf("zombie revival: %w", err)
	}
	defer zombie.stop()
	if err := waitHealthy(ctx, primaryBase); err != nil {
		return fmt.Errorf("zombie revival: %w", err)
	}

	zc := client.NewWithHTTPClient(primaryBase, &http.Client{Timeout: 5 * time.Second})
	zc.SetProducer("chaos")
	zc.SetKnownEpoch(newEpoch)
	_, err = zc.IngestSeq(ctx, mkBatch(), ackedBatches+100)
	var stale *client.ErrStaleEpoch
	if !errors.As(err, &stale) {
		return fmt.Errorf("tokened write to the revived zombie: got %v, want ErrStaleEpoch", err)
	}
	if stale.RequestEpoch != newEpoch || stale.NodeEpoch >= newEpoch {
		return fmt.Errorf("stale-epoch detail %+v, want request %d against an older node epoch", stale, newEpoch)
	}
	rep.ZombiesFenced++

	// A fresh supervisor — no memory of the election — must re-learn the
	// epoch from the fleet, keep the elected primary (no flap, no
	// re-mint), and demote the zombie in place into a follower.
	sup2, err := failover.New(failover.Config{
		Nodes:        bases,
		ProbeEvery:   150 * time.Millisecond,
		ProbeTimeout: time.Second,
		FailAfter:    3,
		RecoverAfter: 1,
		Logf:         supLogf,
	})
	if err != nil {
		return err
	}
	sup2.Start()
	defer sup2.Stop()
	if err := waitSupervisor(ctx, sup2, func(st failover.Status) bool {
		return st.Primary == newPrimaryBase && st.ClusterEpoch == newEpoch
	}, "epoch re-learn by the fresh supervisor"); err != nil {
		return err
	}
	zombieDemoted := func(st failover.Status) bool {
		for _, n := range st.Nodes {
			if n.URL == primaryBase {
				return n.Role == "follower" && n.Epoch == newEpoch
			}
		}
		return false
	}
	if err := waitSupervisor(ctx, sup2, zombieDemoted, "zombie demotion"); err != nil {
		return err
	}
	if st := sup2.Status(); st.Elections != 0 {
		return fmt.Errorf("fresh supervisor ran %d elections over a healthy fleet", st.Elections)
	}
	zst, err := zc.Stats(ctx)
	if err != nil {
		return err
	}
	if zst.Role != "follower" || zst.Epoch != newEpoch || zst.Primary != newPrimaryBase {
		return fmt.Errorf("zombie rejoined as role=%q epoch=%d primary=%q, want follower/%d/%q",
			zst.Role, zst.Epoch, zst.Primary, newEpoch, newPrimaryBase)
	}
	// A plain write aimed at the demoted node must be refused locally with
	// the 421 redirect naming the elected primary. The client would
	// transparently redeem that redirect — which is the typed reply's
	// whole point — so this assertion goes to the wire directly.
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, primaryBase+"/ingest",
		bytes.NewReader(server.EncodeBatch(mkBatch())))
	if err != nil {
		return err
	}
	resp, err := (&http.Client{Timeout: 5 * time.Second}).Do(req)
	if err != nil {
		return fmt.Errorf("demoted zombie ingest: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		return fmt.Errorf("demoted zombie answered a plain ingest with %d, want the 421 primary redirect", resp.StatusCode)
	}
	if hint := resp.Header.Get("X-KB2-Primary"); hint != newPrimaryBase {
		return fmt.Errorf("zombie's 421 redirect names %q, want %q", hint, newPrimaryBase)
	}
	rep.ZombiesRejoined++

	// One more acked batch through the pool, then the whole replica set —
	// zombie included — must converge and answer the probe identically.
	if _, err := sendAcked(ctx); err != nil {
		return fmt.Errorf("post-rejoin ingest: %w", err)
	}
	allClients := append([]*client.Client{npc, zc}, followerClients...)
	for i, c := range allClients {
		wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		err := c.WaitSeen(wctx, ackedPoints)
		cancel()
		if err != nil {
			return fmt.Errorf("node %d never converged to %d points after the rejoin: %w", i, ackedPoints, err)
		}
	}
	want, err := npc.Label(ctx, probe)
	if err != nil {
		return err
	}
	for i, c := range allClients[1:] {
		got, err := c.Label(ctx, probe)
		if err != nil {
			return fmt.Errorf("node %d probe: %w", i, err)
		}
		if err := compareLabels(want, got); err != nil {
			return fmt.Errorf("node %d diverged after the failover round-trip: %w", i, err)
		}
	}
	rep.ProbeLabels = len(want.Labels)
	rep.ProbeModelGen = want.ModelGen
	return nil
}

// waitSupervisor polls the supervisor's fleet view until the condition
// holds (the supervisor probes on its own cadence; the harness only
// watches).
func waitSupervisor(ctx context.Context, sup *failover.Supervisor, cond func(failover.Status) bool, what string) error {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		if cond(sup.Status()) {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("supervisor never reached %s (status %+v)", what, sup.Status())
}
