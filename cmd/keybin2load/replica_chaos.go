package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"keybin2/internal/client"
	"keybin2/internal/linalg"
	"keybin2/internal/synth"
	"keybin2/internal/xrand"
)

// Replica chaos: every cycle builds a fresh 1-primary/N-follower cluster,
// ingests acked batches into the primary, waits for the followers to
// replicate, and asserts the cluster answers a probe batch identically on
// every node. Then the chaos event — kill -9 of the primary — and the
// recovery path the replication tier exists for:
//
//  1. the surviving followers still answer the probe with the SAME labels
//     (reads survive the primary's death),
//  2. follower 0 is promoted (POST /promote) and audited the same way the
//     single-node harness audits a restart: its producer high-water mark
//     covers every acked batch and its applied points reach the acked
//     volume — no acked batch may die with the primary,
//  3. the promoted node accepts new acked writes from its replayed
//     horizon, proving the WAL it opened at promotion is live.

type replicaChaosConfig struct {
	daemon   string
	cycles   int
	replicas int
	dims     int
	batch    int // points per batch
	perCycle int // batches acked before the primary is killed
	seed     int64
	dir      string
	fsync    string
}

type replicaChaosReport struct {
	Cycles        int   `json:"cycles"`
	Replicas      int   `json:"replicas"`
	BatchesAcked  int64 `json:"batches_acked"`
	PointsAcked   int64 `json:"points_acked"`
	Promotions    int   `json:"promotions"`
	PostPromote   int64 `json:"post_promote_batches"`
	ProbeLabels   int   `json:"probe_labels"`
	ProbeModelGen int64 `json:"probe_model_gen"`
}

func runReplicaChaos(ctx context.Context, rc replicaChaosConfig) error {
	if rc.cycles <= 0 {
		return nil
	}
	if rc.replicas <= 0 {
		rc.replicas = 2
	}
	if rc.dir == "" {
		d, err := os.MkdirTemp("", "kb2promote-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(d)
		rc.dir = d
	}
	logF, err := os.Create(filepath.Join(rc.dir, "cluster.log"))
	if err != nil {
		return err
	}
	defer logF.Close()

	spec := synth.AutoMixture(4, rc.dims, 6, 1, xrand.New(rc.seed))
	mkBatch := func(pseq uint64) *linalg.Matrix {
		b, _ := spec.Sample(rc.batch, xrand.New(rc.seed+int64(pseq)))
		return b
	}
	probe, _ := spec.Sample(256, xrand.New(rc.seed+7))

	rep := replicaChaosReport{Cycles: rc.cycles, Replicas: rc.replicas}
	const producer = "chaos"

	for cycle := 1; cycle <= rc.cycles; cycle++ {
		if err := runPromoteCycle(ctx, rc, cycle, logF, mkBatch, probe, producer, &rep); err != nil {
			return fmt.Errorf("promote cycle %d: %w", cycle, err)
		}
	}

	enc, _ := json.MarshalIndent(rep, "", "  ")
	os.Stdout.Write(append(enc, '\n'))
	fmt.Fprintf(os.Stderr,
		"promote: %d cycles × (1 primary + %d followers), %d batches (%d points) acked, %d promotions, 0 lost\n",
		rep.Cycles, rep.Replicas, rep.BatchesAcked, rep.PointsAcked, rep.Promotions)
	return nil
}

// runPromoteCycle is one full build-up/kill/promote round with its own
// fresh state directories.
func runPromoteCycle(ctx context.Context, rc replicaChaosConfig, cycle int, logF *os.File,
	mkBatch func(uint64) *linalg.Matrix, probe *linalg.Matrix, producer string, rep *replicaChaosReport) error {

	dir := filepath.Join(rc.dir, fmt.Sprintf("cycle%d", cycle))
	nodeDir := func(i int) string { return filepath.Join(dir, fmt.Sprintf("node%d", i)) }
	common := func(i int) []string {
		return []string{
			"-addr", "127.0.0.1:0",
			"-dims", strconv.Itoa(rc.dims),
			"-range", "-12,12",
			"-trials", "2",
			"-period", "1000",
			"-seed", strconv.FormatInt(rc.seed, 10),
			"-checkpoint", filepath.Join(nodeDir(i), "state.kb2s"),
			"-checkpoint-every", "300ms",
			"-wal-dir", filepath.Join(nodeDir(i), "wal"),
			"-fsync", rc.fsync,
			"-follow-poll", "250ms",
		}
	}

	// Node 0 is the primary; nodes 1..replicas follow it.
	primary, err := startNode(rc.daemon, logF, common(0)...)
	if err != nil {
		return err
	}
	primaryUp := true
	defer func() {
		if primaryUp {
			primary.kill()
		}
	}()
	primaryBase := "http://" + primary.addr
	if err := waitHealthy(ctx, primaryBase); err != nil {
		return err
	}

	followers := make([]*daemonProc, rc.replicas)
	followerBase := make([]string, rc.replicas)
	for i := range followers {
		followers[i], err = startNode(rc.daemon, logF,
			append(common(i+1), "-follow", primaryBase)...)
		if err != nil {
			return err
		}
		defer followers[i].stop()
		followerBase[i] = "http://" + followers[i].addr
		if err := waitHealthy(ctx, followerBase[i]); err != nil {
			return err
		}
	}

	// Build up state through the primary.
	pc := client.NewWithHTTPClient(primaryBase, &http.Client{Timeout: 5 * time.Second})
	pc.SetProducer(producer)
	var acked uint64
	var ackedPoints int64
	for i := 0; i < rc.perCycle; i++ {
		pseq := uint64(i + 1)
		if _, err := pc.IngestSeq(ctx, mkBatch(pseq), pseq); err != nil {
			return fmt.Errorf("ingest pseq %d: %w", pseq, err)
		}
		acked = pseq
		ackedPoints += int64(rc.batch)
		rep.BatchesAcked++
		rep.PointsAcked += int64(rc.batch)
	}

	// Every node must converge to the acked volume, then answer the probe
	// identically — the byte-identical serving claim, across processes.
	clients := []*client.Client{pc}
	for _, base := range followerBase {
		clients = append(clients, client.NewWithHTTPClient(base, &http.Client{Timeout: 5 * time.Second}))
	}
	for i, c := range clients {
		wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		err := c.WaitSeen(wctx, ackedPoints)
		cancel()
		if err != nil {
			return fmt.Errorf("node %d never converged to %d points: %w", i, ackedPoints, err)
		}
	}
	want, err := pc.Label(ctx, probe)
	if err != nil {
		return err
	}
	for i, c := range clients[1:] {
		got, err := c.Label(ctx, probe)
		if err != nil {
			return fmt.Errorf("follower %d probe: %w", i, err)
		}
		if err := compareLabels(want, got); err != nil {
			return fmt.Errorf("follower %d diverged from primary before the kill: %w", i, err)
		}
	}

	// A follower must refuse writes with the typed redirect.
	fc := clients[1]
	fc.SetProducer(producer)
	if _, err := fc.IngestSeq(ctx, mkBatch(acked+1), acked+1); err == nil {
		return fmt.Errorf("follower accepted an ingest; wanted the 421 primary redirect")
	} else {
		var np *client.ErrNotPrimary
		if !errors.As(err, &np) {
			return fmt.Errorf("follower ingest: got %v, wanted ErrNotPrimary", err)
		}
	}

	// The chaos event: the primary dies mid-cluster, no drain.
	primary.kill()
	primaryUp = false
	fmt.Fprintf(os.Stderr, "promote: cycle %d killed primary at acked pseq %d (%d points)\n",
		cycle, acked, ackedPoints)

	// Reads must survive on every follower, unchanged.
	for i, c := range clients[1:] {
		got, err := c.Label(ctx, probe)
		if err != nil {
			return fmt.Errorf("follower %d after primary kill: %w", i, err)
		}
		if err := compareLabels(want, got); err != nil {
			return fmt.Errorf("follower %d changed answers after the primary died: %w", i, err)
		}
	}

	// Promote follower 0 and audit it like a restarted primary: nothing
	// acked may be missing from its producer horizon or its stream.
	if _, err := fc.Promote(ctx); err != nil {
		return fmt.Errorf("promote: %w", err)
	}
	rep.Promotions++
	st, err := fc.Stats(ctx)
	if err != nil {
		return err
	}
	if st.Role != "primary" || !st.Promoted {
		return fmt.Errorf("promoted node reports role=%q promoted=%v", st.Role, st.Promoted)
	}
	if st.Producers[producer] < acked {
		return fmt.Errorf("ACKED BATCH LOST IN PROMOTION: promoted node recovered producer seq %d, harness holds ack for %d",
			st.Producers[producer], acked)
	}
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	err = fc.WaitSeen(wctx, ackedPoints)
	cancel()
	if err != nil {
		return fmt.Errorf("acked points missing on the promoted node: %w", err)
	}

	// New writes flow through the promoted node from its replayed horizon.
	for i := 0; i < 3; i++ {
		pseq := acked + uint64(i+1)
		if _, err := fc.IngestSeq(ctx, mkBatch(pseq), pseq); err != nil {
			return fmt.Errorf("post-promotion ingest pseq %d: %w", pseq, err)
		}
		ackedPoints += int64(rc.batch)
		rep.BatchesAcked++
		rep.PointsAcked += int64(rc.batch)
		rep.PostPromote++
	}
	wctx, cancel = context.WithTimeout(ctx, 30*time.Second)
	err = fc.WaitSeen(wctx, ackedPoints)
	cancel()
	if err != nil {
		return fmt.Errorf("post-promotion points never applied: %w", err)
	}
	final, err := fc.Label(ctx, probe)
	if err != nil {
		return err
	}
	rep.ProbeLabels = len(final.Labels)
	rep.ProbeModelGen = final.ModelGen
	return nil
}

func compareLabels(want, got client.LabelResult) error {
	if want.ModelGen != got.ModelGen {
		return fmt.Errorf("model_gen %d vs %d", want.ModelGen, got.ModelGen)
	}
	if len(want.Labels) != len(got.Labels) {
		return fmt.Errorf("%d vs %d labels", len(want.Labels), len(got.Labels))
	}
	mismatch := 0
	for i := range want.Labels {
		if want.Labels[i] != got.Labels[i] {
			mismatch++
		}
	}
	if mismatch > 0 {
		return fmt.Errorf("%d of %d labels differ", mismatch, len(want.Labels))
	}
	return nil
}
