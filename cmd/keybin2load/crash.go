package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"keybin2/internal/client"
	"keybin2/internal/linalg"
	"keybin2/internal/synth"
	"keybin2/internal/xrand"
)

// The crash harness proves the daemon's durability contract the honest
// way: it repeatedly kill -9s a REAL keybin2d process mid-ingest and
// audits, after every restart, that no acknowledged batch was lost. The
// invariants checked each cycle:
//
//  1. the recovered producer high-water mark covers every batch the
//     harness got a 202 for (an acked batch survived the kill), and
//  2. the daemon's applied point count reaches the sum of acked batch
//     points (the survivors were actually replayed into the stream).
//
// One batch per cycle is deliberately left in-flight when the kill
// lands; the harness re-sends it with the SAME producer sequence after
// the restart, exercising the idempotent-retry path: if the original
// made it into the WAL the daemon re-acks it as a duplicate, if not it
// is applied fresh — either way its points count exactly once.
//
// After the cycles, a final restart WITHOUT traffic asserts label
// consistency: recovery is deterministic, so a probe batch must label
// identically before and after one more kill -9.

type crashConfig struct {
	daemon   string // path to the keybin2d binary
	cycles   int
	dims     int
	batch    int // points per batch
	perCycle int // batches acked per cycle before the kill
	seed     int64
	dir      string // workdir: checkpoint, wal/, daemon log
	fsync    string
}

type crashReport struct {
	Cycles        int    `json:"cycles"`
	Fsync         string `json:"fsync"`
	BatchesAcked  int64  `json:"batches_acked"`
	PointsAcked   int64  `json:"points_acked"`
	DupesReacked  int64  `json:"duplicates_reacked"`
	FinalSeen     int64  `json:"final_seen"`
	FinalRefits   int64  `json:"final_refits"`
	ProbeLabels   int    `json:"probe_labels"`
	ProbeModelGen int64  `json:"probe_model_gen"`
}

// daemonProc is one spawned keybin2d process.
type daemonProc struct {
	cmd  *exec.Cmd
	addr string
	done chan error // cmd.Wait result
}

func startDaemon(cc crashConfig, logW *os.File) (*daemonProc, error) {
	return startNode(cc.daemon, logW,
		"-addr", "127.0.0.1:0",
		"-dims", strconv.Itoa(cc.dims),
		"-range", "-12,12",
		"-trials", "2",
		"-period", "1000",
		"-seed", strconv.FormatInt(cc.seed, 10),
		"-queue-depth", "8",
		"-checkpoint", filepath.Join(cc.dir, "state.kb2s"),
		"-checkpoint-every", "300ms",
		"-wal-dir", filepath.Join(cc.dir, "wal"),
		"-fsync", cc.fsync,
		"-wal-segment-bytes", "65536", // small segments: rotation + truncation every few cycles
	)
}

// startNode spawns one keybin2d with the given flags and waits for its
// listen address — the shared launcher for the single-node crash cycles
// and the replica promotion cycles.
func startNode(daemon string, logW *os.File, args ...string) (*daemonProc, error) {
	cmd := exec.Command(daemon, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	dp := &daemonProc{cmd: cmd, done: make(chan error, 1)}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(logW, line)
			if addr := listenAddr(line); addr != "" {
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	go func() { dp.done <- cmd.Wait() }()
	select {
	case dp.addr = <-addrCh:
	case err := <-dp.done:
		return nil, fmt.Errorf("daemon exited before listening: %v", err)
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		return nil, fmt.Errorf("daemon never reported its listen address")
	}
	return dp, nil
}

// listenAddr extracts the daemon's bound address from its startup log
// line. It understands both the structured form (msg=listening
// addr=127.0.0.1:7420) and the legacy "listening on ADDR" prose.
func listenAddr(line string) string {
	if strings.Contains(line, "msg=listening") {
		for _, f := range strings.Fields(line) {
			if a, ok := strings.CutPrefix(f, "addr="); ok {
				return strings.Trim(a, `"`)
			}
		}
	}
	if i := strings.Index(line, "listening on "); i >= 0 {
		if f := strings.Fields(line[i+len("listening on "):]); len(f) > 0 {
			return f[0]
		}
	}
	return ""
}

// kill is the chaos event: SIGKILL, no drain, no goodbye.
func (dp *daemonProc) kill() {
	dp.cmd.Process.Kill()
	<-dp.done
}

// stop is a graceful SIGTERM drain (used only for the final shutdown).
func (dp *daemonProc) stop() error {
	dp.cmd.Process.Signal(os.Interrupt)
	select {
	case <-dp.done:
		return nil
	case <-time.After(30 * time.Second):
		dp.cmd.Process.Kill()
		<-dp.done
		return fmt.Errorf("daemon ignored SIGINT; killed")
	}
}

func waitHealthy(ctx context.Context, base string) error {
	hc := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		resp, err := hc.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("daemon at %s never became healthy", base)
}

func runCrashCycles(ctx context.Context, cc crashConfig) error {
	if cc.cycles <= 0 {
		return nil
	}
	if cc.dir == "" {
		d, err := os.MkdirTemp("", "kb2crash-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(d)
		cc.dir = d
	}
	logF, err := os.Create(filepath.Join(cc.dir, "daemon.log"))
	if err != nil {
		return err
	}
	defer logF.Close()

	spec := synth.AutoMixture(4, cc.dims, 6, 1, xrand.New(cc.seed))
	// mkBatch derives batch #pseq from the seed alone, so a re-send after
	// a crash reproduces the identical bytes the original ack covered.
	mkBatch := func(pseq uint64) *linalg.Matrix {
		b, _ := spec.Sample(cc.batch, xrand.New(cc.seed+int64(pseq)))
		return b
	}
	const producer = "chaos"
	rep := crashReport{Cycles: cc.cycles, Fsync: cc.fsync}
	var (
		nextPseq  uint64 // last allocated producer sequence
		acked     uint64 // highest pseq the harness holds a 202 for
		pending   uint64 // in-flight pseq with unknown fate (0 = none)
		pendAcked bool   // pending WAS acked but the ack was "lost": the re-send MUST dedupe
	)
	// sendAcked submits one pseq with bounded backpressure patience and
	// records the ack. Duplicate re-acks count their points once (now).
	sendAcked := func(c *client.Client, pseq uint64) (client.IngestAck, error) {
		for attempt := 0; ; attempt++ {
			ack, err := c.IngestSeq(ctx, mkBatch(pseq), pseq)
			if err == nil {
				if ack.Duplicate {
					rep.DupesReacked++
				}
				rep.BatchesAcked++
				rep.PointsAcked += int64(cc.batch)
				if pseq > acked {
					acked = pseq
				}
				return ack, nil
			}
			var bp *client.ErrBackpressure
			if !errors.As(err, &bp) {
				return ack, fmt.Errorf("ingest pseq %d: %w", pseq, err)
			}
			if attempt > 200 {
				return ack, fmt.Errorf("ingest pseq %d: backpressure never cleared", pseq)
			}
			time.Sleep(bp.RetryAfter)
		}
	}
	// audit asserts the durability invariants against a just-restarted
	// daemon: the producer high-water mark covers every ack, and the
	// applied point count catches up to the acked volume. Each recovery is
	// logged with the incarnation's run-ID and what its WAL replay did, so
	// a failure here can be matched to the exact daemon log/trace stream.
	audit := func(c *client.Client, cycle int) error {
		st, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		if st.WAL != nil {
			fmt.Fprintf(os.Stderr, "crash: cycle %d recovered run_id=%s replayed_batches=%d replayed_points=%d last_seq=%d\n",
				cycle, st.RunID, st.WAL.ReplayedBatches, st.WAL.ReplayedPoints, st.WAL.LastSeq)
		} else {
			fmt.Fprintf(os.Stderr, "crash: cycle %d recovered run_id=%s (no wal)\n", cycle, st.RunID)
		}
		if st.Producers[producer] < acked {
			return fmt.Errorf("cycle %d: ACKED BATCH LOST: daemon recovered producer seq %d, harness holds ack for %d",
				cycle, st.Producers[producer], acked)
		}
		wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		defer cancel()
		if err := c.WaitSeen(wctx, rep.PointsAcked); err != nil {
			return fmt.Errorf("cycle %d: acked points never replayed: %w", cycle, err)
		}
		return nil
	}

	for cycle := 1; cycle <= cc.cycles; cycle++ {
		dp, err := startDaemon(cc, logF)
		if err != nil {
			return fmt.Errorf("cycle %d: %w", cycle, err)
		}
		base := "http://" + dp.addr
		if err := waitHealthy(ctx, base); err != nil {
			dp.kill()
			return fmt.Errorf("cycle %d: %w", cycle, err)
		}
		c := client.NewWithHTTPClient(base, &http.Client{Timeout: 5 * time.Second})
		c.SetProducer(producer)
		if err := audit(c, cycle); err != nil {
			dp.kill()
			return err
		}
		// Settle the previous cycle's in-flight batch first: same pseq,
		// so a WAL'd original dedupes the re-send.
		if pending != 0 {
			ack, err := sendAcked(c, pending)
			if err != nil {
				dp.kill()
				return fmt.Errorf("cycle %d: resend: %w", cycle, err)
			}
			if pendAcked && !ack.Duplicate {
				dp.kill()
				return fmt.Errorf("cycle %d: pseq %d was acked before the kill but re-applied after it: the WAL lost an acknowledged batch", cycle, pending)
			}
			pending, pendAcked = 0, false
		}
		for i := 0; i < cc.perCycle; i++ {
			nextPseq++
			if _, err := sendAcked(c, nextPseq); err != nil {
				dp.kill()
				return fmt.Errorf("cycle %d: %w", cycle, err)
			}
		}
		nextPseq++
		pending = nextPseq
		if cycle%2 == 0 {
			// Lost-ack cycle: the daemon acks the batch, the harness drops
			// the ack on the floor (as a crashed producer would). The
			// re-send above, next cycle, must come back as a duplicate —
			// proving the acked batch survived the kill in the WAL.
			if _, err := c.IngestSeq(ctx, mkBatch(pending), pending); err == nil {
				pendAcked = true
			}
		} else {
			// Race cycle: leave the batch in flight and pull the trigger
			// while it races the WAL append; the kill decides its fate.
			go func(pseq uint64) {
				c.IngestSeq(ctx, mkBatch(pseq), pseq)
			}(pending)
		}
		dp.kill()
		fmt.Fprintf(os.Stderr, "crash: cycle %d/%d killed daemon at acked pseq %d (%d points)\n",
			cycle, cc.cycles, acked, rep.PointsAcked)
	}

	// Final pass: recover, settle the last in-flight batch, then prove a
	// traffic-free kill/restart does not change what the model says.
	dp, err := startDaemon(cc, logF)
	if err != nil {
		return err
	}
	base := "http://" + dp.addr
	if err := waitHealthy(ctx, base); err != nil {
		dp.kill()
		return err
	}
	c := client.NewWithHTTPClient(base, &http.Client{Timeout: 5 * time.Second})
	c.SetProducer(producer)
	if err := audit(c, cc.cycles+1); err != nil {
		dp.kill()
		return err
	}
	if pending != 0 {
		ack, err := sendAcked(c, pending)
		if err != nil {
			dp.kill()
			return err
		}
		if pendAcked && !ack.Duplicate {
			dp.kill()
			return fmt.Errorf("final: pseq %d was acked before the kill but re-applied after it: the WAL lost an acknowledged batch", pending)
		}
		pending = 0
	}
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	err = c.WaitSeen(wctx, rep.PointsAcked)
	cancel()
	if err != nil {
		dp.kill()
		return err
	}
	probe, _ := spec.Sample(256, xrand.New(cc.seed+7))
	before, err := c.Label(ctx, probe)
	if err != nil {
		dp.kill()
		return err
	}
	dp.kill()

	dp, err = startDaemon(cc, logF)
	if err != nil {
		return err
	}
	base = "http://" + dp.addr
	if err := waitHealthy(ctx, base); err != nil {
		dp.kill()
		return err
	}
	c = client.NewWithHTTPClient(base, &http.Client{Timeout: 5 * time.Second})
	after, err := c.Label(ctx, probe)
	if err != nil {
		dp.kill()
		return err
	}
	mismatch := 0
	for i := range before.Labels {
		if before.Labels[i] != after.Labels[i] {
			mismatch++
		}
	}
	if mismatch > 0 {
		dp.kill()
		return fmt.Errorf("restart changed %d of %d probe labels (gen %d → %d): recovery is not deterministic",
			mismatch, len(before.Labels), before.ModelGen, after.ModelGen)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		dp.kill()
		return err
	}
	rep.FinalSeen = st.Seen
	rep.FinalRefits = st.Refits
	rep.ProbeLabels = len(after.Labels)
	rep.ProbeModelGen = after.ModelGen
	if err := dp.stop(); err != nil {
		return err
	}

	enc, _ := json.MarshalIndent(rep, "", "  ")
	os.Stdout.Write(append(enc, '\n'))
	fmt.Fprintf(os.Stderr, "crash: %d kill -9 cycles, %d batches (%d points) acked, 0 lost; %d probe labels stable\n",
		rep.Cycles, rep.BatchesAcked, rep.PointsAcked, rep.ProbeLabels)
	return nil
}
