package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"keybin2/internal/client"
	"keybin2/internal/shardcluster"
)

// loadOutput is the report JSON: the standard load measurement, plus the
// cluster distribution block when the target was a router (-cluster).
type loadOutput struct {
	client.LoadReport
	Cluster *clusterReport `json:"cluster,omitempty"`
}

// clusterReport summarizes how the router's hash ring spread the run.
type clusterReport struct {
	Shards     int   `json:"shards"`
	ShardsUp   int   `json:"shards_up"`
	MergeEpoch int64 `json:"merge_epoch"`
	GlobalSeen int64 `json:"global_seen"`
	// BalanceCV is the ring's ownership skew (stddev/mean over live
	// shards' hash-space fractions; ~0.1 at 64 vnodes).
	BalanceCV float64        `json:"ring_balance_cv"`
	PerShard  []shardLoadRow `json:"per_shard"`
}

type shardLoadRow struct {
	URL     string `json:"url"`
	Up      bool   `json:"up"`
	Batches int64  `json:"batches"`
	Points  int64  `json:"points"`
	Labels  int64  `json:"labels"`
	// PointShare is this shard's fraction of all routed points — compare
	// with ring_balance_cv to see hash spread vs. actual traffic spread.
	PointShare float64 `json:"point_share"`
}

// clusterDistribution scrapes the router's /stats and reshapes the
// per-shard rows into the load report's distribution block.
func clusterDistribution(ctx context.Context, addr string) (*clusterReport, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s/stats: %s", addr, resp.Status)
	}
	var cs shardcluster.ClusterStats
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		return nil, err
	}
	if cs.Role != "router" {
		return nil, fmt.Errorf("%s reports role %q — -cluster expects a keybin2router", addr, cs.Role)
	}
	out := &clusterReport{
		Shards: cs.Shards, ShardsUp: cs.ShardsUp,
		MergeEpoch: cs.MergeEpoch, GlobalSeen: cs.GlobalSeen, BalanceCV: cs.Balance,
	}
	var total int64
	for _, row := range cs.ShardDetail {
		total += row.Points
	}
	for _, row := range cs.ShardDetail {
		r := shardLoadRow{
			URL: row.URL, Up: row.Up,
			Batches: row.Batches, Points: row.Points, Labels: row.Labels,
		}
		if total > 0 {
			r.PointShare = float64(row.Points) / float64(total)
		}
		out.PerShard = append(out.PerShard, r)
	}
	return out, nil
}
