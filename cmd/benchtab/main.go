// Command benchtab regenerates the paper's tables and figures.
//
// Usage:
//
//	benchtab -exp all                        # everything, scaled sizes
//	benchtab -exp table1 -full               # Table 1 at paper scale
//	benchtab -exp table2,figure3 -seed 7
//
// Experiments: table1, table2, table3, figure1, figure2, figure3, figure4,
// ablationA, ablationB, ablationC, all.
//
// Default sizing keeps the paper's experimental design (the same dimension
// ladder, process doubling, methods, and metrics) at sizes that finish in
// minutes; -full selects the paper-scale grid (80,000 points per process,
// 20 repeats, 16 ranks — hours of CPU).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"keybin2/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment list or 'all'")
		full      = flag.Bool("full", false, "paper-scale sizes (hours of CPU)")
		seed      = flag.Int64("seed", 1, "random seed")
		repeats   = flag.Int("repeats", 0, "override repeats per design point")
		points    = flag.Int("points", 0, "override points per process")
		workers   = flag.Int("workers", 0, "worker goroutines per algorithm (0 = all CPUs)")
		dbscanAll = flag.Bool("dbscan-all", false, "run distributed PDSDBSCAN at every process count (paper left these cells empty)")
		csvDir    = flag.String("csv", "", "also write machine-readable CSVs into this directory")
		verify    = flag.Bool("verify", false, "re-check the paper's qualitative shape claims and exit nonzero on violation")
	)
	flag.Parse()
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			exitOn(err)
		}
	}

	scale := experiments.Default()
	if *full {
		scale = experiments.Paper()
	}
	scale.Seed = *seed
	scale.Workers = *workers
	if *repeats > 0 {
		scale.Repeats = *repeats
	}
	if *points > 0 {
		scale.PointsPerProc = *points
	}
	scale.RunDistributedDBSCAN = *dbscanAll

	want := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := want["all"]
	ran := 0

	if all || want["table1"] {
		rows := experiments.Table1(scale)
		fmt.Println(experiments.RenderTable("Table 1: fixed processes, growing dimensionality", rows))
		writeCSV(*csvDir, "table1.csv", func(w *os.File) error { return experiments.WriteRowsCSV(w, rows) })
		ran++
	}
	if all || want["table2"] {
		rows := experiments.Table2(scale)
		fmt.Println(experiments.RenderTable("Table 2: fixed dimensionality, doubling processes (weak scaling)", rows))
		writeCSV(*csvDir, "table2.csv", func(w *os.File) error { return experiments.WriteRowsCSV(w, rows) })
		ran++
	}
	if all || want["table3"] {
		fmt.Println(experiments.RenderTable3(experiments.Table3(scale)))
		ran++
	}
	if all || want["figure1"] {
		rows := experiments.Figure1(scale)
		fmt.Println(experiments.RenderFigure1(rows))
		writeCSV(*csvDir, "figure1.csv", func(w *os.File) error { return experiments.WriteFigure1CSV(w, rows) })
		ran++
	}
	if all || want["figure2"] {
		res, err := experiments.Figure2(scale)
		exitOn(err)
		fmt.Println(experiments.RenderFigure2(res))
		ran++
	}
	if all || want["figure3"] {
		rows, err := experiments.Figure3(scale, 0) // all 31 trajectories
		exitOn(err)
		fmt.Println(experiments.RenderFigure3(rows))
		writeCSV(*csvDir, "figure3.csv", func(w *os.File) error { return experiments.WriteFigure3CSV(w, rows) })
		ran++
	}
	if all || want["figure4"] {
		res, err := experiments.Figure4(scale)
		exitOn(err)
		fmt.Println(experiments.RenderFigure4(res))
		writeCSV(*csvDir, "figure4_segments.csv", func(w *os.File) error { return experiments.WriteSegmentsCSV(w, res) })
		ran++
	}
	if all || want["ablationa"] {
		fmt.Println(experiments.RenderAblationA(experiments.AblationA(scale)))
		ran++
	}
	if all || want["ablationb"] {
		fmt.Println(experiments.RenderAblationB(experiments.AblationB(scale)))
		ran++
	}
	if all || want["ablationc"] {
		fmt.Println(experiments.RenderAblationC(experiments.AblationC(scale)))
		ran++
	}
	if all || want["ablationd"] {
		fmt.Println(experiments.RenderAblationD(experiments.AblationD(scale)))
		ran++
	}
	if *verify {
		violations := experiments.VerifyShapeClaims(scale)
		fmt.Print(experiments.RenderVerify(violations))
		if len(violations) > 0 {
			os.Exit(1)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "benchtab: no experiment matched %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

// writeCSV writes one experiment's CSV into dir (no-op when dir is empty).
func writeCSV(dir, name string, fn func(w *os.File) error) {
	if dir == "" {
		return
	}
	f, err := os.Create(filepath.Join(dir, name))
	exitOn(err)
	defer f.Close()
	exitOn(fn(f))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}
