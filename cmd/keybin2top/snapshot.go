package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"keybin2/internal/failover"
	"keybin2/internal/obs"
	"keybin2/internal/server"
)

// nodeScrape is one node's raw observability surface: its /stats JSON,
// /metrics exposition (flattened by obs.ParseExposition), and /trace ring
// buffer. Err is set (and the rest zero) when the node is unreachable —
// a down shard is a row in the snapshot, not a scrape failure.
type nodeScrape struct {
	URL     string
	Stats   *server.Stats
	Metrics map[string]float64
	Traces  []obs.TraceJSON
	Err     string
}

// scraper pulls the fleet's observability endpoints.
type scraper struct {
	hc      *http.Client
	timeout time.Duration
}

func (s *scraper) getJSON(ctx context.Context, url string, v any) error {
	cctx, cancel := context.WithTimeout(ctx, s.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func (s *scraper) getMetrics(ctx context.Context, base string) (map[string]float64, error) {
	cctx, cancel := context.WithTimeout(ctx, s.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s/metrics: %s", base, resp.Status)
	}
	return obs.ParseExposition(resp.Body)
}

func (s *scraper) getTraces(ctx context.Context, base string) ([]obs.TraceJSON, error) {
	var body struct {
		Traces []obs.TraceJSON `json:"traces"`
	}
	if err := s.getJSON(ctx, base+"/trace", &body); err != nil {
		return nil, err
	}
	return body.Traces, nil
}

// scrapeNode pulls one daemon's /stats, /metrics, and /trace. Stats
// failing makes the node a down row; metrics/trace failures degrade to
// partial data (an old daemon without /trace still renders).
func (s *scraper) scrapeNode(ctx context.Context, base string) nodeScrape {
	ns := nodeScrape{URL: base}
	var st server.Stats
	if err := s.getJSON(ctx, base+"/stats", &st); err != nil {
		ns.Err = err.Error()
		return ns
	}
	ns.Stats = &st
	if m, err := s.getMetrics(ctx, base); err == nil {
		ns.Metrics = m
	}
	if tr, err := s.getTraces(ctx, base); err == nil {
		ns.Traces = tr
	}
	return ns
}

// ShardRow is one node's line in the fleet snapshot.
type ShardRow struct {
	URL    string `json:"url"`
	NodeID string `json:"node_id,omitempty"`
	Role   string `json:"role,omitempty"`
	Up     bool   `json:"up"`
	// Accepted is the node's cumulative accepted-point counter;
	// RatePtsSec is points/sec — a delta over the watch interval, or
	// accepted/uptime on a one-shot snapshot.
	Accepted   int64   `json:"accepted"`
	RatePtsSec float64 `json:"ingest_rate_pts_sec"`
	QueueLen   int     `json:"queue_len"`
	QueueCap   int     `json:"queue_cap"`
	// MergeEpoch is the newest global model this node serves;
	// EpochStale is how many epochs it trails the fleet maximum.
	MergeEpoch int64 `json:"merge_epoch"`
	EpochStale int64 `json:"merge_epoch_staleness"`
	// ReplicaLagSec is nonzero on a follower behind its primary.
	ReplicaLagSec float64 `json:"replica_lag_seconds,omitempty"`
	// P99IngestMs is the p99 ingest-request latency from the node's
	// keybin2d_http_request_seconds histogram (-1 = no data).
	P99IngestMs float64 `json:"p99_ingest_ms"`
	Traces      int     `json:"traces"`
	Err         string  `json:"error,omitempty"`
}

// FleetTrace is one distributed trace reassembled across node ring
// buffers: every per-process trace sharing a trace ID, grouped.
type FleetTrace struct {
	TraceID string `json:"trace_id"`
	// Hops are the per-process traces, "<node-url>:<root-name>", in scrape
	// order; Nodes is how many distinct processes contributed.
	Hops  []string `json:"hops"`
	Nodes int      `json:"nodes"`
	Spans int      `json:"spans"`
	// MaxDurUs is the slowest hop's duration.
	MaxDurUs float64 `json:"max_dur_us"`
}

// FleetSnapshot is one keybin2top frame: the cluster rollup, per-shard
// rows, supervisor view, and cross-node trace assembly.
type FleetSnapshot struct {
	At       string     `json:"at"`
	Shards   []ShardRow `json:"shards"`
	ShardsUp int        `json:"shards_up"`
	// TotalAccepted / TotalRatePtsSec roll up the shard rows.
	TotalAccepted   int64   `json:"total_accepted"`
	TotalRatePtsSec float64 `json:"total_rate_pts_sec"`
	// MaxMergeEpoch is the newest merge epoch anywhere in the fleet — the
	// staleness baseline.
	MaxMergeEpoch int64 `json:"max_merge_epoch"`
	// Supervisor view (zero when no -supervisor was given).
	ClusterEpoch int64  `json:"cluster_epoch,omitempty"`
	Primary      string `json:"primary,omitempty"`
	Elections    int64  `json:"elections,omitempty"`
	// PrimaryUp reports whether some live node is an unfenced primary;
	// ElectionDowntimeSec accumulates watch intervals where none was.
	PrimaryUp           bool    `json:"primary_up"`
	ElectionDowntimeSec float64 `json:"election_downtime_sec"`

	TraceTrees []FleetTrace `json:"trace_trees,omitempty"`
}

// p99FromBuckets reads the p99 latency (seconds) out of a cumulative
// Prometheus bucket family for one endpoint label. -1 when the family is
// absent or empty.
func p99FromBuckets(metrics map[string]float64, family, endpoint string) float64 {
	prefix := family + `_bucket{endpoint="` + endpoint + `",le="`
	type bucket struct {
		le  float64
		cum float64
	}
	var bs []bucket
	var inf float64
	haveInf := false
	for k, v := range metrics {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		leStr := strings.TrimSuffix(k[len(prefix):], `"}`)
		if leStr == "+Inf" {
			inf, haveInf = v, true
			continue
		}
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			continue
		}
		bs = append(bs, bucket{le: le, cum: v})
	}
	if !haveInf || inf == 0 {
		return -1
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
	target := 0.99 * inf
	for _, b := range bs {
		if b.cum >= target {
			return b.le
		}
	}
	return bs[len(bs)-1].le // p99 landed in +Inf; report the largest bound
}

// assembleTraces groups every scraped per-process trace by trace ID and
// keeps the cross-node ones first — a trace seen on two processes is the
// distributed-tracing payoff; a single-node one is just local history.
func assembleTraces(scrapes []nodeScrape, max int) []FleetTrace {
	type agg struct {
		ft    FleetTrace
		nodes map[string]bool
	}
	byID := map[string]*agg{}
	var order []string
	for _, ns := range scrapes {
		for _, tr := range ns.Traces {
			if tr.TraceID == "" {
				continue
			}
			a := byID[tr.TraceID]
			if a == nil {
				a = &agg{ft: FleetTrace{TraceID: tr.TraceID}, nodes: map[string]bool{}}
				byID[tr.TraceID] = a
				order = append(order, tr.TraceID)
			}
			a.ft.Hops = append(a.ft.Hops, ns.URL+":"+tr.Name)
			a.nodes[ns.URL] = true
			a.ft.Spans += 1 + len(tr.Spans)
			if tr.DurUs > a.ft.MaxDurUs {
				a.ft.MaxDurUs = tr.DurUs
			}
		}
	}
	out := make([]FleetTrace, 0, len(order))
	for _, id := range order {
		a := byID[id]
		a.ft.Nodes = len(a.nodes)
		out = append(out, a.ft)
	}
	// Cross-node traces first, then widest, preserving scrape order within
	// ties (newest-first per node ring).
	// Cross-node trees first, slowest first within a tier, trace ID as
	// the final tiebreak — the cap below must cut deterministically.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Nodes != out[j].Nodes {
			return out[i].Nodes > out[j].Nodes
		}
		if out[i].MaxDurUs != out[j].MaxDurUs {
			return out[i].MaxDurUs > out[j].MaxDurUs
		}
		return out[i].TraceID < out[j].TraceID
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// buildSnapshot folds raw scrapes into one fleet frame. prev is the
// previous frame's scrapes (nil on the first/one-shot frame) and elapsed
// the wall time since, for delta rates.
func buildSnapshot(scrapes []nodeScrape, sup *failover.Status, prev map[string]int64, elapsed time.Duration, maxTraces int, now time.Time) FleetSnapshot {
	snap := FleetSnapshot{At: now.UTC().Format(time.RFC3339)}
	for _, ns := range scrapes {
		row := ShardRow{URL: ns.URL, P99IngestMs: -1}
		if ns.Stats == nil {
			row.Err = ns.Err
			snap.Shards = append(snap.Shards, row)
			continue
		}
		st := ns.Stats
		row.Up = true
		row.NodeID = st.NodeID
		row.Role = st.Role
		row.Accepted = st.Accepted
		row.QueueLen = st.QueueLen
		row.QueueCap = st.QueueCap
		row.MergeEpoch = st.MergeEpoch
		row.ReplicaLagSec = st.ReplicaLagSeconds
		row.Traces = len(ns.Traces)
		if prevAccepted, ok := prev[ns.URL]; ok && elapsed > 0 {
			row.RatePtsSec = float64(st.Accepted-prevAccepted) / elapsed.Seconds()
		} else if st.UptimeSec > 0 {
			row.RatePtsSec = float64(st.Accepted) / st.UptimeSec
		}
		if ns.Metrics != nil {
			if p99 := p99FromBuckets(ns.Metrics, "keybin2d_http_request_seconds", "ingest"); p99 >= 0 {
				row.P99IngestMs = p99 * 1000
			}
		}
		snap.ShardsUp++
		snap.TotalAccepted += st.Accepted
		snap.TotalRatePtsSec += row.RatePtsSec
		if st.MergeEpoch > snap.MaxMergeEpoch {
			snap.MaxMergeEpoch = st.MergeEpoch
		}
		if st.Role == "primary" && !st.Fenced {
			snap.PrimaryUp = true
		}
		snap.Shards = append(snap.Shards, row)
	}
	for i := range snap.Shards {
		if snap.Shards[i].Up {
			snap.Shards[i].EpochStale = snap.MaxMergeEpoch - snap.Shards[i].MergeEpoch
		}
	}
	if sup != nil {
		snap.ClusterEpoch = sup.ClusterEpoch
		snap.Primary = sup.Primary
		snap.Elections = sup.Elections
	}
	snap.TraceTrees = assembleTraces(scrapes, maxTraces)
	return snap
}
