// Command keybin2top is the fleet observability plane: it scrapes
// /stats, /metrics, and /trace from every node of a keybin2 deployment
// (shards, a router, optionally a failover supervisor), reassembles
// cross-process distributed traces by trace ID, and renders one fleet
// snapshot — per-shard ingest rate and queue depth, replica lag,
// merge-epoch staleness, election downtime, p99 ingest latency.
//
// Usage:
//
//	keybin2top -nodes http://127.0.0.1:7421,http://127.0.0.1:7422
//	           [-router http://127.0.0.1:7420] [-supervisor http://127.0.0.1:7430]
//	           [-watch 2s] [-count 0] [-json] [-traces 8] [-timeout 3s]
//
// One-shot by default: scrape once, print, exit (rates are then
// accepted/uptime). -watch D re-scrapes every D, computing true delta
// rates over the interval and accumulating election downtime (wall time
// with no live unfenced primary); -count bounds the iterations (0 =
// until interrupted). -json emits the snapshot as JSON instead of the
// text table — the form CI and scripts consume.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"keybin2/internal/failover"
)

type options struct {
	nodes      []string
	router     string
	supervisor string
	watch      time.Duration
	count      int
	jsonOut    bool
	maxTraces  int
	timeout    time.Duration
}

func main() {
	var (
		nodes      = flag.String("nodes", "", "comma-separated keybin2d base URLs (shards or replicas)")
		router     = flag.String("router", "", "keybin2router base URL (scraped like a node; its traces join the assembly)")
		supervisor = flag.String("supervisor", "", "keybin2failover base URL (GET /status feeds the primary/epoch view)")
		watch      = flag.Duration("watch", 0, "re-scrape every interval (0 = one-shot)")
		count      = flag.Int("count", 0, "with -watch: stop after this many frames (0 = until interrupted)")
		jsonOut    = flag.Bool("json", false, "emit JSON instead of the text table")
		maxTraces  = flag.Int("traces", 8, "max assembled trace trees per frame (0 = none)")
		timeout    = flag.Duration("timeout", 3*time.Second, "per-endpoint scrape timeout")
	)
	flag.Parse()

	o := options{
		router: strings.TrimRight(*router, "/"), supervisor: strings.TrimRight(*supervisor, "/"),
		watch: *watch, count: *count, jsonOut: *jsonOut, maxTraces: *maxTraces, timeout: *timeout,
	}
	for _, n := range strings.Split(*nodes, ",") {
		if n = strings.TrimRight(strings.TrimSpace(n), "/"); n != "" {
			o.nodes = append(o.nodes, n)
		}
	}
	if len(o.nodes) == 0 && o.router == "" {
		fmt.Fprintln(os.Stderr, "keybin2top: -nodes (or at least -router) is required")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o, os.Stdout); err != nil && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "keybin2top: %v\n", err)
		os.Exit(1)
	}
}

// run drives the scrape loop: one frame in one-shot mode, a frame per
// -watch interval otherwise. All frames go to w.
func run(ctx context.Context, o options, w io.Writer) error {
	sc := &scraper{hc: &http.Client{}, timeout: o.timeout}
	targets := o.nodes
	if o.router != "" {
		targets = append(append([]string{}, o.nodes...), o.router)
	}

	var (
		prev     map[string]int64
		lastAt   time.Time
		downtime float64
		frames   int
	)
	for {
		scrapes := make([]nodeScrape, len(targets))
		for i, u := range targets {
			scrapes[i] = sc.scrapeNode(ctx, u)
		}
		var sup *failover.Status
		if o.supervisor != "" {
			var st failover.Status
			if err := sc.getJSON(ctx, o.supervisor+"/status", &st); err == nil {
				sup = &st
			}
		}
		now := time.Now()
		var elapsed time.Duration
		if !lastAt.IsZero() {
			elapsed = now.Sub(lastAt)
		}
		snap := buildSnapshot(scrapes, sup, prev, elapsed, o.maxTraces, now)
		if elapsed > 0 && !snap.PrimaryUp {
			downtime += elapsed.Seconds()
		}
		snap.ElectionDowntimeSec = downtime

		if o.jsonOut {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(snap); err != nil {
				return err
			}
		} else {
			renderTable(w, snap)
		}

		frames++
		if o.watch <= 0 || (o.count > 0 && frames >= o.count) {
			return nil
		}
		prev = make(map[string]int64, len(scrapes))
		for _, ns := range scrapes {
			if ns.Stats != nil {
				prev[ns.URL] = ns.Stats.Accepted
			}
		}
		lastAt = now
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(o.watch):
		}
	}
}

// renderTable prints the human form: a fleet rollup line, one row per
// shard, and the assembled cross-node traces.
func renderTable(w io.Writer, snap FleetSnapshot) {
	fmt.Fprintf(w, "keybin2top %s  shards %d/%d up  accepted %d  rate %.0f pts/s  merge epoch %d",
		snap.At, snap.ShardsUp, len(snap.Shards), snap.TotalAccepted, snap.TotalRatePtsSec, snap.MaxMergeEpoch)
	if snap.Primary != "" {
		fmt.Fprintf(w, "  primary %s (epoch %d, %d elections)", snap.Primary, snap.ClusterEpoch, snap.Elections)
	}
	if snap.ElectionDowntimeSec > 0 {
		fmt.Fprintf(w, "  downtime %.1fs", snap.ElectionDowntimeSec)
	}
	fmt.Fprintln(w)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tROLE\tUP\tACCEPTED\tRATE/S\tQUEUE\tEPOCH\tSTALE\tLAG_S\tP99_MS")
	for _, r := range snap.Shards {
		if !r.Up {
			fmt.Fprintf(tw, "%s\t-\tDOWN\t-\t-\t-\t-\t-\t-\t-\t(%s)\n", r.URL, r.Err)
			continue
		}
		p99 := "-"
		if r.P99IngestMs >= 0 {
			p99 = fmt.Sprintf("%.2f", r.P99IngestMs)
		}
		fmt.Fprintf(tw, "%s\t%s\tup\t%d\t%.0f\t%d/%d\t%d\t%d\t%.1f\t%s\n",
			r.URL, r.Role, r.Accepted, r.RatePtsSec, r.QueueLen, r.QueueCap,
			r.MergeEpoch, r.EpochStale, r.ReplicaLagSec, p99)
	}
	tw.Flush()

	if len(snap.TraceTrees) > 0 {
		fmt.Fprintln(w, "traces:")
		for _, ft := range snap.TraceTrees {
			fmt.Fprintf(w, "  %s  nodes=%d spans=%d max=%.1fms  %s\n",
				ft.TraceID, ft.Nodes, ft.Spans, ft.MaxDurUs/1000, strings.Join(ft.Hops, " → "))
		}
	}
	fmt.Fprintln(w)
}
