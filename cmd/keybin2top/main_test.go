package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"keybin2/internal/client"
	"keybin2/internal/core"
	"keybin2/internal/linalg"
	"keybin2/internal/obs"
	"keybin2/internal/server"
)

func testStream(dims int) core.StreamConfig {
	rr := make([][2]float64, dims)
	for i := range rr {
		rr[i] = [2]float64{-12, 12}
	}
	return core.StreamConfig{
		Config:    core.Config{Seed: 11, Trials: 2},
		Dims:      dims,
		RawRanges: rr,
		Period:    1 << 30,
	}
}

// TestOneShotSnapshot: a one-shot run against a live daemon produces a
// frame with the daemon up, its accepted counter, a p99 from the live
// histogram, and the ingest's trace ID in the assembled trace trees.
func TestOneShotSnapshot(t *testing.T) {
	srv, err := server.New(server.Config{Stream: testStream(3)})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := client.New(ts.URL)
	ack, err := c.IngestTracked(context.Background(), linalg.NewMatrix(8, 3))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	o := options{nodes: []string{ts.URL}, jsonOut: true, maxTraces: 8, timeout: 3 * time.Second}
	if err := run(context.Background(), o, &buf); err != nil {
		t.Fatal(err)
	}
	var snap FleetSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("frame is not JSON: %v\n%s", err, buf.String())
	}
	if snap.ShardsUp != 1 || len(snap.Shards) != 1 {
		t.Fatalf("shards = %d up of %d, want 1/1", snap.ShardsUp, len(snap.Shards))
	}
	row := snap.Shards[0]
	if !row.Up || row.Accepted < 8 {
		t.Errorf("row = %+v, want up with ≥8 accepted", row)
	}
	if row.P99IngestMs < 0 {
		t.Errorf("no p99 from live histogram: %+v", row)
	}
	if snap.TotalAccepted != row.Accepted {
		t.Errorf("rollup accepted %d != row %d", snap.TotalAccepted, row.Accepted)
	}
	found := false
	for _, ft := range snap.TraceTrees {
		if ft.TraceID == ack.TraceID {
			found = true
		}
	}
	if !found {
		t.Errorf("ingest trace %s missing from %d assembled trees", ack.TraceID, len(snap.TraceTrees))
	}

	// The text renderer must cope with the same frame.
	var txt bytes.Buffer
	renderTable(&txt, snap)
	if txt.Len() == 0 {
		t.Error("text table rendered nothing")
	}
}

// TestSnapshotDownNode: an unreachable node is a DOWN row, not an error.
func TestSnapshotDownNode(t *testing.T) {
	var buf bytes.Buffer
	o := options{nodes: []string{"http://127.0.0.1:1"}, jsonOut: true, timeout: 500 * time.Millisecond}
	if err := run(context.Background(), o, &buf); err != nil {
		t.Fatal(err)
	}
	var snap FleetSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ShardsUp != 0 || len(snap.Shards) != 1 || snap.Shards[0].Up || snap.Shards[0].Err == "" {
		t.Fatalf("down node row = %+v", snap.Shards)
	}
}

// TestP99FromBuckets: quantile read off synthetic cumulative buckets.
func TestP99FromBuckets(t *testing.T) {
	m := map[string]float64{
		`keybin2d_http_request_seconds_bucket{endpoint="ingest",le="0.001"}`: 90,
		`keybin2d_http_request_seconds_bucket{endpoint="ingest",le="0.01"}`:  99,
		`keybin2d_http_request_seconds_bucket{endpoint="ingest",le="0.1"}`:   100,
		`keybin2d_http_request_seconds_bucket{endpoint="ingest",le="+Inf"}`:  100,
		`keybin2d_http_request_seconds_bucket{endpoint="label",le="+Inf"}`:   50,
	}
	if got := p99FromBuckets(m, "keybin2d_http_request_seconds", "ingest"); got != 0.01 {
		t.Errorf("p99 = %v, want 0.01", got)
	}
	if got := p99FromBuckets(m, "keybin2d_http_request_seconds", "absent"); got != -1 {
		t.Errorf("absent endpoint p99 = %v, want -1", got)
	}
}

// TestAssembleTraces: one trace ID spanning two processes groups into a
// single tree and sorts ahead of single-node traces.
func TestAssembleTraces(t *testing.T) {
	shared := obs.NewTraceID()
	scrapes := []nodeScrape{
		{URL: "http://router", Traces: []obs.TraceJSON{
			{TraceID: shared, Name: "router_ingest", DurUs: 500},
			{TraceID: obs.NewTraceID(), Name: "merge_epoch"},
		}},
		{URL: "http://shard1", Traces: []obs.TraceJSON{
			{TraceID: shared, Name: "ingest_batch", DurUs: 300,
				Spans: []obs.SpanJSON{{Name: "wal_append"}, {Name: "apply"}}},
		}},
	}
	trees := assembleTraces(scrapes, 8)
	if len(trees) != 2 {
		t.Fatalf("trees = %d, want 2", len(trees))
	}
	top := trees[0]
	if top.TraceID != shared || top.Nodes != 2 {
		t.Fatalf("cross-node trace not first: %+v", top)
	}
	if top.Spans != 4 { // router root + shard root + 2 child spans
		t.Errorf("spans = %d, want 4", top.Spans)
	}
	if top.MaxDurUs != 500 {
		t.Errorf("max dur = %v, want 500", top.MaxDurUs)
	}
	if len(trees[0].Hops) != 2 {
		t.Errorf("hops = %v", trees[0].Hops)
	}
	if got := assembleTraces(scrapes, 1); len(got) != 1 || got[0].TraceID != shared {
		t.Errorf("cap=1 kept %+v", got)
	}
}
