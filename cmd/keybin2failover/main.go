// Command keybin2failover is the replica-set control plane: it supervises
// one keybin2d primary and its followers, detects primary failure with a
// consecutive-miss detector (flap hysteresis, jittered probes), elects
// the most-caught-up live follower, promotes it under a freshly minted
// fencing epoch, and converges stragglers — a revived ex-primary is
// fenced and demoted in place into a follower of the new primary.
//
// The supervisor holds no durable state. On start it re-learns the
// cluster epoch from the fleet's /stats and adopts the best live
// unfenced primary (minting epoch 1 over an unmanaged group), so it can
// itself be killed and restarted at any time without disturbing the
// replica set.
//
// Usage:
//
//	keybin2failover -nodes http://a:7420,http://b:7421,http://c:7422
//	                [-addr :7430] [-probe-every 500ms] [-probe-timeout 2s]
//	                [-fail-after 3] [-recover-after 2] [-jitter 0.2]
//	                [-seed 1] [-log-level info] [-pprof] [-slow-span 100ms]
//
// API:
//
//	GET /status  → cluster view: run_id, epoch, primary, per-node liveness
//	GET /metrics → Prometheus text exposition (keybin2failover_* series)
//	GET /trace   → recent probe-round traces (probe/converge spans)
//	GET /healthz → supervisor liveness
//	GET /debug/pprof/* → runtime profiles (only with -pprof)
//
// Election is deterministic: live followers ordered by highest replayed
// sequence, then lowest node id. A zombie whose applied horizon is AT OR
// BEHIND the elected primary's is demoted into its replica set; one that
// diverged past it is fenced off the write path and left for the
// operator — demoting it would discard acknowledged writes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"keybin2/internal/failover"
	"keybin2/internal/obs"
)

type supervisorOpts struct {
	addr         string
	nodes        string
	probeEvery   time.Duration
	probeTimeout time.Duration
	failAfter    int
	recoverAfter int
	jitter       float64
	seed         int64
	logLevel     string
	pprof        bool
	slowSpan     time.Duration
}

func main() {
	var o supervisorOpts
	flag.StringVar(&o.addr, "addr", ":7430", "HTTP listen address for /status, /metrics, /healthz")
	flag.StringVar(&o.nodes, "nodes", "", "comma-separated keybin2d base URLs of the replica set (required, ≥ 1)")
	flag.DurationVar(&o.probeEvery, "probe-every", 500*time.Millisecond, "probe-round cadence")
	flag.DurationVar(&o.probeTimeout, "probe-timeout", 2*time.Second, "per-node probe deadline (control calls get 5x)")
	flag.IntVar(&o.failAfter, "fail-after", 3, "consecutive missed probes before a node is declared down")
	flag.IntVar(&o.recoverAfter, "recover-after", 2, "consecutive successful probes before a down node is readmitted")
	flag.Float64Var(&o.jitter, "jitter", 0.2, "per-node probe jitter as a fraction of -probe-every")
	flag.Int64Var(&o.seed, "seed", 1, "probe-jitter random seed")
	flag.StringVar(&o.logLevel, "log-level", "info", "minimum log level: debug | info | warn | error")
	flag.BoolVar(&o.pprof, "pprof", false, "serve net/http/pprof under /debug/pprof/")
	flag.DurationVar(&o.slowSpan, "slow-span", 0, "log trace IDs of probe rounds slower than this (0 = off)")
	flag.Parse()

	if err := run(o, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "keybin2failover:", err)
		os.Exit(1)
	}
}

func buildConfig(o supervisorOpts) (failover.Config, error) {
	var cfg failover.Config
	if o.nodes == "" {
		return cfg, fmt.Errorf("-nodes is required")
	}
	var nodes []string
	for _, n := range strings.Split(o.nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, n)
		}
	}
	if len(nodes) == 0 {
		return cfg, fmt.Errorf("-nodes is required")
	}
	if o.failAfter < 1 || o.recoverAfter < 1 {
		return cfg, fmt.Errorf("-fail-after and -recover-after must be ≥ 1 (got %d/%d)", o.failAfter, o.recoverAfter)
	}
	if o.jitter < 0 || o.jitter >= 1 {
		return cfg, fmt.Errorf("-jitter wants a fraction in [0,1), got %g", o.jitter)
	}
	if _, err := obs.ParseLevel(o.logLevel); err != nil {
		return cfg, fmt.Errorf("bad flags: %w", err)
	}
	cfg = failover.Config{
		Nodes:        nodes,
		ProbeEvery:   o.probeEvery,
		ProbeTimeout: o.probeTimeout,
		FailAfter:    o.failAfter,
		RecoverAfter: o.recoverAfter,
		Jitter:       o.jitter,
		Seed:         o.seed,
		Registry:     obs.NewRegistry(),
		RunID:        obs.NewRunID(),
		EnablePprof:  o.pprof,
	}
	return cfg, nil
}

// run starts the supervisor and blocks until a signal (or a close of
// stop, which tests use). When ready is non-nil it receives the bound
// listen address once serving.
func run(o supervisorOpts, stop <-chan struct{}, ready chan<- net.Addr) error {
	cfg, err := buildConfig(o)
	if err != nil {
		return err
	}
	lvl, _ := obs.ParseLevel(o.logLevel) // validated by buildConfig
	logger := obs.NewLogger(os.Stderr, lvl, obs.KV("run_id", cfg.RunID))
	cfg.Logf = logger.Logf
	cfg.Tracer = obs.NewTracer(128)
	cfg.Tracer.SetRunID(cfg.RunID)
	if o.slowSpan > 0 {
		cfg.Tracer.SetSlowSpanLog(o.slowSpan, logger)
	}

	sup, err := failover.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr()
	}
	hs := &http.Server{Handler: sup.Handler()}
	sup.Start()
	logger.Info("listening",
		obs.KV("addr", ln.Addr()), obs.KV("role", "failover-supervisor"),
		obs.KV("nodes", len(cfg.Nodes)), obs.KV("probe_every", o.probeEvery),
		obs.KV("fail_after", o.failAfter), obs.KV("recover_after", o.recoverAfter),
		obs.KV("pprof", o.pprof))

	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Info("stopping", obs.KV("signal", s))
	case <-stop:
		logger.Info("stopping", obs.KV("signal", "stop requested"))
	case err := <-httpErr:
		sup.Stop()
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	sup.Stop()
	st := sup.Status()
	logger.Info("stopped",
		obs.KV("cluster_epoch", st.ClusterEpoch), obs.KV("primary", st.Primary),
		obs.KV("elections", st.Elections), obs.KV("fences", st.Fences))
	return nil
}
