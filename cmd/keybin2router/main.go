// Command keybin2router fronts N keybin2d shards as one logical
// clustering service. Producers POST /ingest at the router; a consistent
// hash on the X-Producer header pins each producer to one shard (keeping
// the daemon's per-producer dedupe exact), untagged traffic round-robins.
// On a cadence — or on demand via POST /merge — the router runs the
// histogram-merge collective: it pulls every live shard's binning
// histograms (GET /hist), folds them into one global state, refits a
// single global model with stable labels, and installs the identical
// model bytes on every shard (POST /hist/install). After a merge epoch,
// every shard answers /label exactly as a single daemon fed the whole
// stream would.
//
// Shard death is survivable by construction: a dead shard's hash range
// redistributes to survivors on the next request, merges proceed with
// whoever is up, and a recovered shard is re-admitted by the health loop
// and caught up to the current global model before it serves. The health
// loop runs the failure detector from internal/failover: -fail-after
// consecutive missed probes mark a shard down, -recover-after consecutive
// hits readmit it (flap hysteresis), and each shard's probe is jittered
// by ±(-probe-jitter × -health-every) so probes never land in lockstep.
//
// Usage:
//
//	keybin2router -shards http://h1:7420,http://h2:7420,http://h3:7420
//	              -dims 16 -range -10,10 [-addr :7410] [-trials 5]
//	              [-seed 1] [-depth 0] [-vnodes 64] [-merge-every 10s]
//	              [-health-every 500ms] [-shard-timeout 10s]
//	              [-fail-after 2] [-recover-after 2] [-probe-jitter 0.2]
//	              [-node-id id] [-log-level info] [-pprof] [-slow-span 50ms]
//
// The stream flags (-dims -range -trials -seed -depth) MUST match the
// shards' flags: the router re-derives the global model from the merged
// histograms, so a mismatch is a config error, caught at startup where
// possible. -range is required — congruent per-shard histograms are what
// make the merge exact.
//
// API:
//
//	POST /ingest  → proxied to the producer's shard (bounded failover)
//	POST /label   → proxied round-robin to any live shard
//	GET  /stats   → cluster aggregate + per-shard breakdown
//	GET  /ring    → hash-ring ownership, balance, liveness
//	POST /merge   → run one merge epoch now
//	GET  /metrics → Prometheus text exposition (keybin2router_* series)
//	GET  /trace   → recent distributed traces (proxy hops, merge epochs)
//	GET  /healthz → router liveness
//	GET  /readyz  → 200 when ≥ 1 shard is up
//	GET  /debug/pprof/* → runtime profiles (only with -pprof)
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"keybin2/internal/core"
	"keybin2/internal/obs"
	"keybin2/internal/shardcluster"
)

type routerOpts struct {
	addr         string
	shards       string
	dims         int
	trials       int
	seed         int64
	depth        int
	rawRange     string
	vnodes       int
	mergeEvery   time.Duration
	healthEvery  time.Duration
	shardTimeout time.Duration
	failAfter    int
	recoverAfter int
	probeJitter  float64
	nodeID       string
	logLevel     string
	pprof        bool
	slowSpan     time.Duration
}

func main() {
	var o routerOpts
	flag.StringVar(&o.addr, "addr", ":7410", "HTTP listen address")
	flag.StringVar(&o.shards, "shards", "", "comma-separated keybin2d base URLs (required, ≥ 1)")
	flag.IntVar(&o.dims, "dims", 0, "raw input dimensionality — must match the shards (required)")
	flag.IntVar(&o.trials, "trials", 5, "bootstrap projection trials — must match the shards")
	flag.Int64Var(&o.seed, "seed", 1, "random seed — must match the shards")
	flag.IntVar(&o.depth, "depth", 0, "binning tree depth — must match the shards")
	flag.StringVar(&o.rawRange, "range", "", "per-dimension bounds 'lo,hi' — required, must match the shards")
	flag.IntVar(&o.vnodes, "vnodes", 64, "virtual ring points per shard")
	flag.DurationVar(&o.mergeEvery, "merge-every", 10*time.Second, "merge-epoch cadence (0 = manual via POST /merge)")
	flag.DurationVar(&o.healthEvery, "health-every", 500*time.Millisecond, "shard health-probe cadence")
	flag.DurationVar(&o.shardTimeout, "shard-timeout", 10*time.Second, "per-shard request deadline")
	flag.IntVar(&o.failAfter, "fail-after", 2, "consecutive missed health probes before a shard is marked down")
	flag.IntVar(&o.recoverAfter, "recover-after", 2, "consecutive successful probes before a down shard is readmitted")
	flag.Float64Var(&o.probeJitter, "probe-jitter", 0.2, "per-shard probe jitter as a fraction of -health-every")
	flag.StringVar(&o.nodeID, "node-id", "", "stable router identity for logs (default: the run_id)")
	flag.StringVar(&o.logLevel, "log-level", "info", "minimum log level: debug | info | warn | error")
	flag.BoolVar(&o.pprof, "pprof", false, "serve net/http/pprof under /debug/pprof/")
	flag.DurationVar(&o.slowSpan, "slow-span", 0, "log trace IDs of spans slower than this (0 = off)")
	flag.Parse()

	if err := run(o, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "keybin2router:", err)
		os.Exit(1)
	}
}

func buildConfig(o routerOpts) (shardcluster.Config, error) {
	var cfg shardcluster.Config
	if o.shards == "" {
		return cfg, fmt.Errorf("-shards is required")
	}
	if o.dims <= 0 {
		return cfg, fmt.Errorf("-dims is required (got %d)", o.dims)
	}
	if o.rawRange == "" {
		return cfg, fmt.Errorf("-range is required: predetermined bounds are what make shard histograms congruent and the merge exact")
	}
	lohi := strings.SplitN(o.rawRange, ",", 2)
	if len(lohi) != 2 {
		return cfg, fmt.Errorf("-range wants 'lo,hi', got %q", o.rawRange)
	}
	lo, err1 := strconv.ParseFloat(strings.TrimSpace(lohi[0]), 64)
	hi, err2 := strconv.ParseFloat(strings.TrimSpace(lohi[1]), 64)
	if err1 != nil || err2 != nil || lo >= hi {
		return cfg, fmt.Errorf("-range wants numeric lo < hi, got %q", o.rawRange)
	}
	ranges := make([][2]float64, o.dims)
	for i := range ranges {
		ranges[i] = [2]float64{lo, hi}
	}
	if _, err := obs.ParseLevel(o.logLevel); err != nil {
		return cfg, fmt.Errorf("bad flags: %w", err)
	}
	if o.failAfter < 1 || o.recoverAfter < 1 {
		return cfg, fmt.Errorf("-fail-after and -recover-after must be ≥ 1 (got %d/%d)", o.failAfter, o.recoverAfter)
	}
	if o.probeJitter < 0 || o.probeJitter >= 1 {
		return cfg, fmt.Errorf("-probe-jitter wants a fraction in [0,1), got %g", o.probeJitter)
	}
	var shards []string
	for _, s := range strings.Split(o.shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			shards = append(shards, s)
		}
	}
	cfg = shardcluster.Config{
		Shards: shards,
		Stream: core.StreamConfig{
			Config:    core.Config{Trials: o.trials, Seed: o.seed, Depth: o.depth},
			Dims:      o.dims,
			RawRanges: ranges,
			Period:    1 << 30, // the router refits on merge epochs, never on a point cadence
		},
		VNodes:           o.vnodes,
		MergeEvery:       o.mergeEvery,
		HealthEvery:      o.healthEvery,
		FailThreshold:    o.failAfter,
		RecoverThreshold: o.recoverAfter,
		ProbeJitter:      o.probeJitter,
		ShardTimeout:     o.shardTimeout,
		RunID:            obs.NewRunID(),
		EnablePprof:      o.pprof,
	}
	return cfg, nil
}

// run starts the router and blocks until a signal (or a close of stop,
// which tests use). When ready is non-nil it receives the bound address.
func run(o routerOpts, stop <-chan struct{}, ready chan<- net.Addr) error {
	cfg, err := buildConfig(o)
	if err != nil {
		return err
	}
	lvl, _ := obs.ParseLevel(o.logLevel) // validated by buildConfig
	nodeID := o.nodeID
	if nodeID == "" {
		nodeID = cfg.RunID
	}
	logger := obs.NewLogger(os.Stderr, lvl, obs.KV("run_id", cfg.RunID))
	cfg.Logf = logger.Logf
	cfg.Tracer = obs.NewTracer(256)
	cfg.Tracer.SetRunID(cfg.RunID)
	if o.slowSpan > 0 {
		cfg.Tracer.SetSlowSpanLog(o.slowSpan, logger)
	}

	r, err := shardcluster.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr()
	}
	hs := &http.Server{Handler: r.Handler()}
	r.Start()
	logger.Info("listening",
		obs.KV("addr", ln.Addr()), obs.KV("node_id", nodeID), obs.KV("role", "router"),
		obs.KV("shards", len(cfg.Shards)), obs.KV("vnodes", cfg.VNodes),
		obs.KV("merge_every", o.mergeEvery), obs.KV("pprof", o.pprof))

	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Info("stopping", obs.KV("signal", s))
	case <-stop:
		logger.Info("stopping", obs.KV("signal", "stop requested"))
	case err := <-httpErr:
		r.Stop()
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	r.Stop()
	logger.Info("stopped", obs.KV("merge_epoch", r.Epoch()))
	return nil
}
