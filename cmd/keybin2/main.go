// Command keybin2 clusters a CSV dataset with KeyBin2.
//
// Usage:
//
//	keybin2 -in data.csv [-out labels.csv] [-trials 5] [-seed 1]
//	        [-ranks 1] [-ring] [-truth] [-no-projection] [-depth 0]
//	        [-comm-timeout 0] [-tcp-addrs a:p,b:p] [-tcp-rank 0]
//	        [-max-frame 0] [-dial-timeout 30s]
//
// The input is a CSV of numeric features, one point per row (an optional
// header row is skipped). With -truth, the last column is a ground-truth
// integer label used only for evaluation. With -ranks > 1 the fit runs
// distributed over in-process message-passing ranks, exercising exactly the
// histogram-only communication path a multi-node deployment uses; -ring
// consolidates histograms around a ring instead of a binomial tree.
//
// With -tcp-addrs the fit instead runs over the TCP transport: every
// participating process is started with the same comma-separated address
// list and its own -tcp-rank, shards the input by rank, and rank 0 writes
// the gathered labels. -comm-timeout bounds every receive as a backstop
// against dead or wedged peers (a rank failure surfaces as a RankFailedError
// instead of a hang) and -max-frame caps the accepted wire frame size.
//
// Output (stdout or -out): the input rows with an appended cluster label
// column. A summary with cluster count, the histogram-CH assessment, and —
// when -truth is given — pairwise precision/recall/F1 goes to stderr.
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"keybin2/internal/cluster"
	"keybin2/internal/core"
	"keybin2/internal/dataio"
	"keybin2/internal/eval"
	"keybin2/internal/linalg"
	"keybin2/internal/mpi"
	"keybin2/internal/synth"
)

// runOpts carries every CLI knob; tests drive run() with it directly.
type runOpts struct {
	in, out      string
	trials       int
	seed         int64
	ranks        int
	ring         bool
	truth        bool
	noProjection bool
	depth        int
	minCluster   int
	describe     bool
	commStats    bool

	commTimeout time.Duration // per-Recv backstop for distributed runs
	tcpAddrs    string        // comma-separated rank addresses; enables TCP transport
	tcpRank     int           // this process's rank when tcpAddrs is set
	maxFrame    int           // TCP max accepted frame payload (0 = default)
	dialTimeout time.Duration // TCP mesh-establishment timeout
}

func main() {
	var o runOpts
	flag.StringVar(&o.in, "in", "", "input CSV (required; '-' for stdin)")
	flag.StringVar(&o.out, "out", "", "output CSV with label column (default stdout)")
	flag.IntVar(&o.trials, "trials", 5, "bootstrap projection trials")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	flag.IntVar(&o.ranks, "ranks", 1, "in-process message-passing ranks")
	flag.BoolVar(&o.ring, "ring", false, "ring histogram consolidation (distributed runs)")
	flag.BoolVar(&o.truth, "truth", false, "treat last column as ground-truth label")
	flag.BoolVar(&o.noProjection, "no-projection", false, "skip random projection (KeyBin1 ablation)")
	flag.IntVar(&o.depth, "depth", 0, "binning tree depth (0 = auto from data size)")
	flag.IntVar(&o.minCluster, "min-cluster", 0, "minimum cluster size (0 = auto)")
	flag.BoolVar(&o.describe, "describe", false, "print the fitted model's structure to stderr")
	flag.BoolVar(&o.commStats, "comm-stats", false, "print per-rank communication counters (messages, bytes, collectives) to stderr")
	flag.DurationVar(&o.commTimeout, "comm-timeout", 0, "per-receive timeout in distributed runs (0 = block; backstop against dead peers)")
	flag.StringVar(&o.tcpAddrs, "tcp-addrs", "", "comma-separated host:port per rank; run over the TCP transport")
	flag.IntVar(&o.tcpRank, "tcp-rank", 0, "this process's rank within -tcp-addrs")
	flag.IntVar(&o.maxFrame, "max-frame", 0, "max accepted TCP frame payload in bytes (0 = default 256 MiB)")
	flag.DurationVar(&o.dialTimeout, "dial-timeout", 30*time.Second, "TCP mesh establishment timeout")
	flag.Parse()
	if o.in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "keybin2:", err)
		os.Exit(1)
	}
}

func run(o runOpts) error {
	var data *linalg.Matrix
	var truthLabels []int
	var err error
	switch {
	case o.in == "-" && o.truth:
		data, truthLabels, err = dataio.ReadLabeled(os.Stdin)
	case o.in == "-":
		data, err = dataio.ReadMatrix(os.Stdin)
	case o.truth:
		data, truthLabels, err = dataio.ReadLabeledFile(o.in)
	default:
		data, err = dataio.ReadMatrixFile(o.in)
	}
	if err != nil {
		return err
	}

	cfg := core.Config{
		Trials:         o.trials,
		Seed:           o.seed,
		Ring:           o.ring,
		NoProjection:   o.noProjection,
		Depth:          o.depth,
		MinClusterSize: o.minCluster,
	}

	start := time.Now()
	var model *core.Model
	var labels []int
	var commSnaps []mpi.StatsSnapshot // per rank; empty on single-process fits
	switch {
	case o.tcpAddrs != "":
		var snap *mpi.StatsSnapshot
		model, labels, snap, err = runTCPFit(o, data, cfg)
		if err != nil {
			return err
		}
		if snap != nil {
			printCommStats(o, []mpi.StatsSnapshot{*snap}, o.tcpRank)
		}
		if model == nil {
			return nil // non-root TCP rank: labels were gathered at rank 0
		}
	case o.ranks <= 1:
		model, labels, err = core.Fit(data, cfg)
		if err != nil {
			return err
		}
	default:
		type rankOut struct {
			labels []int
			model  *core.Model
			stats  mpi.StatsSnapshot
		}
		results, rerr := mpi.RunCollect(o.ranks, func(c *mpi.Comm) (rankOut, error) {
			c.SetRecvTimeout(o.commTimeout)
			lo, hi := synth.Shard(data.Rows, o.ranks, c.Rank())
			local := linalg.NewMatrix(hi-lo, data.Cols)
			copy(local.Data, data.Data[lo*data.Cols:hi*data.Cols])
			m, l, err := core.FitDistributed(c, local, cfg)
			return rankOut{labels: l, model: m, stats: c.Stats().Snapshot()}, err
		})
		if rerr != nil {
			return rerr
		}
		model = results[0].model
		for _, r := range results {
			labels = append(labels, r.labels...)
			commSnaps = append(commSnaps, r.stats)
		}
	}
	elapsed := time.Since(start)
	printCommStats(o, commSnaps, 0)

	fmt.Fprintf(os.Stderr, "points=%d dims=%d clusters=%d trial=%d CH=%.2f time=%s\n",
		data.Rows, data.Cols, model.K(), model.Trial, model.Assessment.CH, elapsed)
	noise := 0
	for _, l := range labels {
		if l == cluster.Noise {
			noise++
		}
	}
	fmt.Fprintf(os.Stderr, "noise points: %d (%.2f%%)\n", noise, 100*float64(noise)/float64(len(labels)))
	if o.describe {
		fmt.Fprint(os.Stderr, model.Describe())
	}
	if o.truth {
		p, r, f1 := eval.PrecisionRecallF1(labels, truthLabels)
		fmt.Fprintf(os.Stderr, "precision=%.3f recall=%.3f f1=%.3f ari=%.3f\n",
			p, r, f1, eval.ARI(labels, truthLabels))
		fmt.Fprint(os.Stderr, eval.RenderReport(eval.Report(labels, truthLabels), 20))
	}

	w := os.Stdout
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return dataio.WriteLabeled(w, data, labels, nil)
}

// runTCPFit runs the distributed fit over the TCP transport. Every process
// shards the (identical) input by its rank, and rank 0 gathers the label
// shards back. Non-root ranks return a nil model after contributing.
func runTCPFit(o runOpts, data *linalg.Matrix, cfg core.Config) (*core.Model, []int, *mpi.StatsSnapshot, error) {
	addrs := strings.Split(o.tcpAddrs, ",")
	comm, cleanup, err := mpi.DialTCPOpts(addrs, o.tcpRank, o.dialTimeout, mpi.TCPOptions{
		MaxFrame:    o.maxFrame,
		RecvTimeout: o.commTimeout,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	defer cleanup()

	size := comm.Size()
	lo, hi := synth.Shard(data.Rows, size, comm.Rank())
	local := linalg.NewMatrix(hi-lo, data.Cols)
	copy(local.Data, data.Data[lo*data.Cols:hi*data.Cols])
	model, localLabels, err := core.FitDistributed(comm, local, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	parts, err := comm.Gather(0, encodeLabels(localLabels))
	if err != nil {
		return nil, nil, nil, err
	}
	snap := comm.Stats().Snapshot()
	if comm.Rank() != 0 {
		return nil, nil, &snap, nil
	}
	var labels []int
	for _, p := range parts {
		labels = append(labels, decodeLabels(p)...)
	}
	if len(labels) != data.Rows {
		return nil, nil, nil, fmt.Errorf("gathered %d labels for %d rows", len(labels), data.Rows)
	}
	return model, labels, &snap, nil
}

// printCommStats writes one JSON line per rank with the communication
// counters (messages, bytes, per-collective calls/bytes) to stderr. The
// per-peer breakdown is omitted — it grows with world size and the
// per-collective view is what the paper's volume argument needs.
func printCommStats(o runOpts, snaps []mpi.StatsSnapshot, firstRank int) {
	if !o.commStats {
		return
	}
	for i, snap := range snaps {
		snap.Peers = nil
		blob, err := json.Marshal(snap)
		if err != nil {
			continue
		}
		fmt.Fprintf(os.Stderr, "comm rank %d: %s\n", firstRank+i, blob)
	}
}

// Labels travel as little-endian int64s (noise is negative).
func encodeLabels(labels []int) []byte {
	buf := make([]byte, 8*len(labels))
	for i, l := range labels {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(int64(l)))
	}
	return buf
}

func decodeLabels(b []byte) []int {
	out := make([]int, len(b)/8)
	for i := range out {
		out[i] = int(int64(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return out
}
