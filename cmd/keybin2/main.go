// Command keybin2 clusters a CSV dataset with KeyBin2.
//
// Usage:
//
//	keybin2 -in data.csv [-out labels.csv] [-trials 5] [-seed 1]
//	        [-ranks 1] [-ring] [-truth] [-no-projection] [-depth 0]
//
// The input is a CSV of numeric features, one point per row (an optional
// header row is skipped). With -truth, the last column is a ground-truth
// integer label used only for evaluation. With -ranks > 1 the fit runs
// distributed over in-process message-passing ranks, exercising exactly the
// histogram-only communication path a multi-node deployment uses; -ring
// consolidates histograms around a ring instead of a binomial tree.
//
// Output (stdout or -out): the input rows with an appended cluster label
// column. A summary with cluster count, the histogram-CH assessment, and —
// when -truth is given — pairwise precision/recall/F1 goes to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"keybin2/internal/cluster"
	"keybin2/internal/core"
	"keybin2/internal/dataio"
	"keybin2/internal/eval"
	"keybin2/internal/linalg"
	"keybin2/internal/mpi"
	"keybin2/internal/synth"
)

func main() {
	var (
		in           = flag.String("in", "", "input CSV (required; '-' for stdin)")
		out          = flag.String("out", "", "output CSV with label column (default stdout)")
		trials       = flag.Int("trials", 5, "bootstrap projection trials")
		seed         = flag.Int64("seed", 1, "random seed")
		ranks        = flag.Int("ranks", 1, "in-process message-passing ranks")
		ring         = flag.Bool("ring", false, "ring histogram consolidation (distributed runs)")
		truth        = flag.Bool("truth", false, "treat last column as ground-truth label")
		noProjection = flag.Bool("no-projection", false, "skip random projection (KeyBin1 ablation)")
		depth        = flag.Int("depth", 0, "binning tree depth (0 = auto from data size)")
		minCluster   = flag.Int("min-cluster", 0, "minimum cluster size (0 = auto)")
		describe     = flag.Bool("describe", false, "print the fitted model's structure to stderr")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *out, *trials, *seed, *ranks, *ring, *truth, *noProjection, *depth, *minCluster, *describe); err != nil {
		fmt.Fprintln(os.Stderr, "keybin2:", err)
		os.Exit(1)
	}
}

func run(in, out string, trials int, seed int64, ranks int, ring, hasTruth, noProjection bool, depth, minCluster int, describe bool) error {
	var data *linalg.Matrix
	var truthLabels []int
	var err error
	switch {
	case in == "-" && hasTruth:
		data, truthLabels, err = dataio.ReadLabeled(os.Stdin)
	case in == "-":
		data, err = dataio.ReadMatrix(os.Stdin)
	case hasTruth:
		data, truthLabels, err = dataio.ReadLabeledFile(in)
	default:
		data, err = dataio.ReadMatrixFile(in)
	}
	if err != nil {
		return err
	}

	cfg := core.Config{
		Trials:         trials,
		Seed:           seed,
		Ring:           ring,
		NoProjection:   noProjection,
		Depth:          depth,
		MinClusterSize: minCluster,
	}

	start := time.Now()
	var model *core.Model
	var labels []int
	if ranks <= 1 {
		model, labels, err = core.Fit(data, cfg)
		if err != nil {
			return err
		}
	} else {
		type rankOut struct {
			labels []int
			model  *core.Model
		}
		results, rerr := mpi.RunCollect(ranks, func(c *mpi.Comm) (rankOut, error) {
			lo, hi := synth.Shard(data.Rows, ranks, c.Rank())
			local := linalg.NewMatrix(hi-lo, data.Cols)
			copy(local.Data, data.Data[lo*data.Cols:hi*data.Cols])
			m, l, err := core.FitDistributed(c, local, cfg)
			return rankOut{labels: l, model: m}, err
		})
		if rerr != nil {
			return rerr
		}
		model = results[0].model
		for _, r := range results {
			labels = append(labels, r.labels...)
		}
	}
	elapsed := time.Since(start)

	fmt.Fprintf(os.Stderr, "points=%d dims=%d clusters=%d trial=%d CH=%.2f time=%s\n",
		data.Rows, data.Cols, model.K(), model.Trial, model.Assessment.CH, elapsed)
	noise := 0
	for _, l := range labels {
		if l == cluster.Noise {
			noise++
		}
	}
	fmt.Fprintf(os.Stderr, "noise points: %d (%.2f%%)\n", noise, 100*float64(noise)/float64(len(labels)))
	if describe {
		fmt.Fprint(os.Stderr, model.Describe())
	}
	if hasTruth {
		p, r, f1 := eval.PrecisionRecallF1(labels, truthLabels)
		fmt.Fprintf(os.Stderr, "precision=%.3f recall=%.3f f1=%.3f ari=%.3f\n",
			p, r, f1, eval.ARI(labels, truthLabels))
		fmt.Fprint(os.Stderr, eval.RenderReport(eval.Report(labels, truthLabels), 20))
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return dataio.WriteLabeled(w, data, labels, nil)
}
