package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"keybin2/internal/dataio"
	"keybin2/internal/synth"
	"keybin2/internal/xrand"
)

func writeDataset(t *testing.T, dir string, withTruth bool) string {
	t.Helper()
	spec := synth.AutoMixture(3, 8, 6, 1, xrand.New(1))
	data, truth := spec.Sample(2000, xrand.New(2))
	path := filepath.Join(dir, "data.csv")
	if withTruth {
		if err := dataio.WriteLabeledFile(path, data, truth, nil); err != nil {
			t.Fatal(err)
		}
	} else {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := dataio.WriteMatrix(f, data, nil); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func TestRunSerial(t *testing.T) {
	dir := t.TempDir()
	in := writeDataset(t, dir, true)
	out := filepath.Join(dir, "labels.csv")
	if err := run(in, out, 3, 1, 1, false, true, false, 0, 0, true); err != nil {
		t.Fatal(err)
	}
	m, labels, err := dataio.ReadLabeledFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2000 || len(labels) != 2000 {
		t.Fatalf("output shape %dx%d", m.Rows, m.Cols)
	}
	distinct := map[int]bool{}
	for _, l := range labels {
		distinct[l] = true
	}
	if len(distinct) < 3 {
		t.Fatalf("only %d distinct labels", len(distinct))
	}
}

func TestRunDistributedRanks(t *testing.T) {
	dir := t.TempDir()
	in := writeDataset(t, dir, false)
	out := filepath.Join(dir, "labels.csv")
	if err := run(in, out, 2, 1, 3, true, false, false, 0, 0, false); err != nil {
		t.Fatal(err)
	}
	_, labels, err := dataio.ReadLabeledFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 2000 {
		t.Fatalf("%d labels", len(labels))
	}
}

func TestRunNoProjection(t *testing.T) {
	dir := t.TempDir()
	in := writeDataset(t, dir, false)
	if err := run(in, filepath.Join(dir, "o.csv"), 1, 1, 1, false, false, true, 5, 4, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingFile(t *testing.T) {
	err := run("/does/not/exist.csv", "", 3, 1, 1, false, false, false, 0, 0, false)
	if err == nil {
		t.Fatal("missing input must fail")
	}
	if !strings.Contains(err.Error(), "exist") && !os.IsNotExist(err) {
		t.Logf("error (ok): %v", err)
	}
}
