package main

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"keybin2/internal/dataio"
	"keybin2/internal/mpi"
	"keybin2/internal/synth"
	"keybin2/internal/xrand"
)

func writeDataset(t *testing.T, dir string, withTruth bool) string {
	t.Helper()
	spec := synth.AutoMixture(3, 8, 6, 1, xrand.New(1))
	data, truth := spec.Sample(2000, xrand.New(2))
	path := filepath.Join(dir, "data.csv")
	if withTruth {
		if err := dataio.WriteLabeledFile(path, data, truth, nil); err != nil {
			t.Fatal(err)
		}
	} else {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := dataio.WriteMatrix(f, data, nil); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func TestRunSerial(t *testing.T) {
	dir := t.TempDir()
	in := writeDataset(t, dir, true)
	out := filepath.Join(dir, "labels.csv")
	if err := run(runOpts{in: in, out: out, trials: 3, seed: 1, ranks: 1, truth: true, describe: true}); err != nil {
		t.Fatal(err)
	}
	m, labels, err := dataio.ReadLabeledFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2000 || len(labels) != 2000 {
		t.Fatalf("output shape %dx%d", m.Rows, m.Cols)
	}
	distinct := map[int]bool{}
	for _, l := range labels {
		distinct[l] = true
	}
	if len(distinct) < 3 {
		t.Fatalf("only %d distinct labels", len(distinct))
	}
}

func TestRunDistributedRanks(t *testing.T) {
	dir := t.TempDir()
	in := writeDataset(t, dir, false)
	out := filepath.Join(dir, "labels.csv")
	if err := run(runOpts{in: in, out: out, trials: 2, seed: 1, ranks: 3, ring: true, commTimeout: time.Minute}); err != nil {
		t.Fatal(err)
	}
	_, labels, err := dataio.ReadLabeledFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 2000 {
		t.Fatalf("%d labels", len(labels))
	}
}

func TestRunNoProjection(t *testing.T) {
	dir := t.TempDir()
	in := writeDataset(t, dir, false)
	if err := run(runOpts{in: in, out: filepath.Join(dir, "o.csv"), trials: 1, seed: 1, ranks: 1, noProjection: true, depth: 5, minCluster: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingFile(t *testing.T) {
	err := run(runOpts{in: "/does/not/exist.csv", trials: 3, seed: 1, ranks: 1})
	if err == nil {
		t.Fatal("missing input must fail")
	}
	if !strings.Contains(err.Error(), "exist") && !os.IsNotExist(err) {
		t.Logf("error (ok): %v", err)
	}
}

func TestRunTCPTransport(t *testing.T) {
	dir := t.TempDir()
	in := writeDataset(t, dir, false)
	out := filepath.Join(dir, "labels.csv")
	addrs, err := mpi.FreeLocalAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	tcpAddrs := strings.Join(addrs, ",")
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			o := runOpts{
				in: in, trials: 2, seed: 1,
				tcpAddrs: tcpAddrs, tcpRank: r,
				commTimeout: time.Minute, dialTimeout: 10 * time.Second,
				maxFrame: 64 << 20,
			}
			if r == 0 {
				o.out = out
			}
			errs[r] = run(o)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("tcp rank %d: %v", r, err)
		}
	}
	_, labels, err := dataio.ReadLabeledFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 2000 {
		t.Fatalf("%d labels", len(labels))
	}
}
