// Command benchjson measures the labeling-pipeline kernels plus the
// keybin2d serving path and writes the results as JSON, seeding the repo's
// performance trajectory. It tracks ns/point for per-point key assignment,
// the tuple-counting pass, the end-to-end serial Fit at the Table-1 medium
// scale, and — via an in-process daemon driven by the client load
// generator — concurrent ingest throughput and /label query latency.
//
// Usage:
//
//	benchjson                          # writes BENCH_keybin2.json
//	benchjson -points 50000 -dims 64   # custom fixture
//	benchjson -o - -reps 5             # print to stdout, 5 repetitions
//	benchjson -server-points 200000    # heavier service measurement
//	benchjson -no-server               # kernels only
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"keybin2/internal/client"
	"keybin2/internal/core"
	"keybin2/internal/server"
	"keybin2/internal/synth"
	"keybin2/internal/xrand"
)

type report struct {
	// Schema identifies the payload for downstream tooling.
	Schema     string             `json:"schema"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Seed       int64              `json:"seed"`
	Kernels    core.KernelTimings `json:"kernels"`
	// Server is the keybin2d serving-path measurement: an in-process
	// daemon under the client load generator (concurrent batched ingest +
	// live /label queries), with the write-ahead log disabled.
	Server *client.LoadReport `json:"server,omitempty"`
	// ServerWALInterval / ServerWALNever repeat the measurement with a WAL
	// in front of the ack under fsync=interval and fsync=never — the cost
	// of the durability layer at its two batched settings. (fsync=always
	// serializes on device flushes and is deliberately not part of the
	// throughput trajectory; its cost is the device's, not the code's.)
	ServerWALInterval *client.LoadReport `json:"server_wal_interval,omitempty"`
	ServerWALNever    *client.LoadReport `json:"server_wal_never,omitempty"`
	// HotPath holds the ingest microbenchmark baselines that CI's
	// bench-guard job replays (same `go test -bench` harness) and compares
	// against.
	HotPath *hotPathReport `json:"hotpath,omitempty"`
}

// hotPathReport records best-of-N throughput for the three ingest-path
// microbenchmarks. Values are the benchmarks' own ReportMetric outputs, so
// a CI re-run of the identical benchmark is directly comparable.
type hotPathReport struct {
	IngestBatchPtsPerSec  float64 `json:"ingest_batch_pts_per_sec"`
	DecodeBatchPtsPerSec  float64 `json:"decode_batch_pts_per_sec"`
	GroupCommitRecsPerSec float64 `json:"group_commit_recs_per_sec"`
}

// measureHotPath runs the three ingest microbenchmarks through the real
// `go test -bench` harness with the exact flags CI's bench-guard job
// replays (-benchtime=1x, best of reps counts), so the recorded baseline
// and the guard measurement share both code path and methodology —
// single cold-ish iterations compared against single cold-ish iterations.
func measureHotPath(reps int) (*hotPathReport, error) {
	h := &hotPathReport{}
	var err error
	if h.IngestBatchPtsPerSec, err = benchBest("./internal/core", "BenchmarkIngestBatch", reps, "pts/s"); err != nil {
		return nil, err
	}
	if h.DecodeBatchPtsPerSec, err = benchBest("./internal/server", "BenchmarkDecodeBatchZeroCopy", reps, "pts/s"); err != nil {
		return nil, err
	}
	if h.GroupCommitRecsPerSec, err = benchBest("./internal/server", "BenchmarkGroupCommit", reps, "recs/s"); err != nil {
		return nil, err
	}
	return h, nil
}

// benchBest runs one benchmark for reps counts and returns the best value
// it reported with the given ReportMetric unit.
func benchBest(pkg, name string, reps int, unit string) (float64, error) {
	out, err := exec.Command("go", "test", "-run", "^$",
		"-bench", "^"+name+"$", "-benchtime", "1x",
		"-count", strconv.Itoa(reps), pkg).CombinedOutput()
	if err != nil {
		return 0, fmt.Errorf("%s: %v\n%s", name, err, out)
	}
	return bestMetric(string(out), name, unit)
}

// bestMetric extracts the maximum value reported with the given unit across
// the benchmark's output lines ("BenchmarkFoo  100  12 ns/op  3400000 pts/s").
func bestMetric(out, name, unit string) (float64, error) {
	var best float64
	found := false
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		f := strings.Fields(line)
		for i := 1; i < len(f); i++ {
			if f[i] != unit {
				continue
			}
			v, err := strconv.ParseFloat(f[i-1], 64)
			if err != nil {
				return 0, fmt.Errorf("%s: bad %s value %q", name, unit, f[i-1])
			}
			if !found || v > best {
				best, found = v, true
			}
		}
	}
	if !found {
		return 0, fmt.Errorf("%s: no %q metric in output:\n%s", name, unit, out)
	}
	return best, nil
}

func main() {
	var (
		points    = flag.Int("points", 30000, "fixture rows (Table-1 medium scale)")
		dims      = flag.Int("dims", 80, "fixture dimensionality")
		reps      = flag.Int("reps", 3, "repetitions per measurement (fastest kept)")
		seed      = flag.Int64("seed", 1, "fixture + fit seed")
		out       = flag.String("o", "BENCH_keybin2.json", "output path ('-' for stdout)")
		noServer  = flag.Bool("no-server", false, "skip the keybin2d serving-path measurement")
		noWAL     = flag.Bool("no-wal", false, "skip the WAL-enabled serving-path measurements")
		noHotPath = flag.Bool("no-hotpath", false, "skip the ingest microbenchmark baselines (needs the go toolchain)")
		srvPts    = flag.Int("server-points", 100000, "points driven through the in-process daemon")
		srvDims   = flag.Int("server-dims", 16, "serving-path dimensionality")
	)
	flag.Parse()

	spec := synth.AutoMixture(4, *dims, 6, 1, xrand.New(*seed))
	data, _ := spec.Sample(*points, xrand.New(*seed+1))
	kt, err := core.MeasureKernels(data, core.Config{Seed: *seed + 2}, *reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep := report{
		Schema:     "keybin2/bench/v1",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       *seed,
		Kernels:    kt,
	}
	if !*noServer {
		lr, err := measureServer(*srvPts, *srvDims, *seed, "")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: server:", err)
			os.Exit(1)
		}
		rep.Server = &lr
		if !*noWAL {
			wi, err := measureServer(*srvPts, *srvDims, *seed, "interval")
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: server wal=interval:", err)
				os.Exit(1)
			}
			rep.ServerWALInterval = &wi
			wn, err := measureServer(*srvPts, *srvDims, *seed, "never")
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: server wal=never:", err)
				os.Exit(1)
			}
			rep.ServerWALNever = &wn
		}
	}
	if !*noHotPath {
		hp, err := measureHotPath(*reps)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: hotpath:", err)
			os.Exit(1)
		}
		rep.HotPath = hp
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: key-assign %.1f ns/pt, tuple-count %.1f ns/pt, fit %.1f ns/pt (%d×%d)\n",
		*out, kt.KeyAssignNsPerPoint, kt.TupleCountNsPerPoint, kt.FitNsPerPoint, kt.Points, kt.Dims)
	if rep.Server != nil {
		fmt.Printf("server: %.0f pts/s ingest, /label p50 %.2f ms p99 %.2f ms (%d pts, %d refits, %d clusters)\n",
			rep.Server.IngestPointsPerSec, rep.Server.QueryP50Ms, rep.Server.QueryP99Ms,
			rep.Server.Points, rep.Server.FinalRefits, rep.Server.FinalClusters)
	}
	if rep.ServerWALInterval != nil && rep.ServerWALNever != nil {
		fmt.Printf("server+wal: %.0f pts/s (fsync=interval), %.0f pts/s (fsync=never)\n",
			rep.ServerWALInterval.IngestPointsPerSec, rep.ServerWALNever.IngestPointsPerSec)
	}
	if rep.HotPath != nil {
		fmt.Printf("hotpath: ingest-batch %.0f pts/s, decode %.0f pts/s, group-commit %.0f recs/s\n",
			rep.HotPath.IngestBatchPtsPerSec, rep.HotPath.DecodeBatchPtsPerSec, rep.HotPath.GroupCommitRecsPerSec)
	}
}

// measureServer boots an in-process keybin2d serving core on a loopback
// socket and drives the client load generator through real HTTP — the
// same path cmd/keybin2d serves, minus process startup. A non-empty
// fsync policy puts a write-ahead log in front of the ack.
func measureServer(points, dims int, seed int64, fsync string) (client.LoadReport, error) {
	ranges := make([][2]float64, dims)
	for i := range ranges {
		ranges[i] = [2]float64{-12, 12}
	}
	cfg := server.Config{
		Stream: core.StreamConfig{
			Config:    core.Config{Seed: seed + 3, Trials: 3},
			Dims:      dims,
			RawRanges: ranges,
			Period:    5000,
		},
		QueueDepth: 256,
		RetryAfter: 20 * time.Millisecond,
	}
	if fsync != "" {
		dir, err := os.MkdirTemp("", "benchwal-*")
		if err != nil {
			return client.LoadReport{}, err
		}
		defer os.RemoveAll(dir)
		cfg.WALDir = dir
		cfg.Fsync = fsync
	}
	srv, err := server.New(cfg)
	if err != nil {
		return client.LoadReport{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return client.LoadReport{}, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	srv.Start()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	rep, err := client.RunLoad(ctx, client.New("http://"+ln.Addr().String()), client.LoadConfig{
		Points: points, Dims: dims, BatchSize: 1024,
		Ingesters: 4, QueryWorkers: 2, Seed: seed + 4,
	})
	if err != nil {
		return rep, err
	}
	if err := hs.Shutdown(ctx); err != nil {
		return rep, err
	}
	return rep, srv.Stop(ctx)
}
