// Command benchjson measures the labeling-pipeline kernels and writes the
// results as JSON, seeding the repo's performance trajectory. It tracks
// ns/point for per-point key assignment, the tuple-counting pass, and the
// end-to-end serial Fit at the Table-1 medium scale.
//
// Usage:
//
//	benchjson                          # writes BENCH_keybin2.json
//	benchjson -points 50000 -dims 64   # custom fixture
//	benchjson -o - -reps 5             # print to stdout, 5 repetitions
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"keybin2/internal/core"
	"keybin2/internal/synth"
	"keybin2/internal/xrand"
)

type report struct {
	// Schema identifies the payload for downstream tooling.
	Schema     string             `json:"schema"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Seed       int64              `json:"seed"`
	Kernels    core.KernelTimings `json:"kernels"`
}

func main() {
	var (
		points = flag.Int("points", 30000, "fixture rows (Table-1 medium scale)")
		dims   = flag.Int("dims", 80, "fixture dimensionality")
		reps   = flag.Int("reps", 3, "repetitions per measurement (fastest kept)")
		seed   = flag.Int64("seed", 1, "fixture + fit seed")
		out    = flag.String("o", "BENCH_keybin2.json", "output path ('-' for stdout)")
	)
	flag.Parse()

	spec := synth.AutoMixture(4, *dims, 6, 1, xrand.New(*seed))
	data, _ := spec.Sample(*points, xrand.New(*seed+1))
	kt, err := core.MeasureKernels(data, core.Config{Seed: *seed + 2}, *reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep := report{
		Schema:     "keybin2/bench/v1",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       *seed,
		Kernels:    kt,
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: key-assign %.1f ns/pt, tuple-count %.1f ns/pt, fit %.1f ns/pt (%d×%d)\n",
		*out, kt.KeyAssignNsPerPoint, kt.TupleCountNsPerPoint, kt.FitNsPerPoint, kt.Points, kt.Dims)
}
