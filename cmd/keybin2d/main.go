// Command keybin2d is the KeyBin2 in-situ clustering daemon: it owns a
// streaming clusterer, ingests batched point traffic over HTTP with
// backpressure, answers label/model/stats queries from an immutable model
// snapshot while refits run underneath, and checkpoints its state to disk
// so a restart resumes exactly where it stopped.
//
// Usage:
//
//	keybin2d -dims 16 [-addr :7420] [-trials 5] [-seed 1]
//	         [-warmup 500] [-period 1000] [-decay 0] [-depth 0]
//	         [-range lo,hi] [-queue-depth 64] [-max-batch 65536]
//	         [-retry-after 250ms] [-checkpoint state.kb2s]
//	         [-checkpoint-every 30s] [-drain-timeout 30s]
//	         [-wal-dir wal/] [-fsync always|interval|never]
//	         [-fsync-interval 100ms] [-wal-segment-bytes 4194304]
//	         [-log-level info] [-trace-log traces.jsonl] [-slow-span 50ms] [-pprof]
//	         [-follow http://primary:7420] [-follow-poll 2s]
//	         [-node-id id] [-shard name] [-epoch 0]
//
// API (binary batches are "KB2B" | dims u32 | count u32 | float64s, LE):
//
//	POST /ingest  → 202 accepted | 429 queue full (Retry-After)
//	POST /label   → {"labels":[...],"model_gen":g,"clusters":k}
//	GET  /model   → encoded model (keybin2.DecodeModel)
//	GET  /stats   → ingest/refit/queue counters (+ WAL lag, run_id)
//	GET  /metrics → Prometheus text exposition
//	GET  /trace   → recent pipeline traces as JSON
//	GET  /healthz → ok (liveness)
//	GET  /readyz  → 200 | 503 (draining or wedged WAL)
//	GET  /wal     → framed WAL tail from ?from=<seq> (replication;
//	               ?epoch=<e> is fenced like a write)
//	GET  /snapshot → newest checkpoint blob (follower bootstrap)
//	POST /promote → follower → primary promotion (?epoch=<e> mints or
//	               adopts a fencing epoch; see below)
//	POST /fence   → adopt a newer epoch: a follower re-points at
//	               ?primary=<url>, a primary is fenced off the write
//	               path (and demoted in place when ?primary is given)
//	POST /epoch   → primary-only epoch adoption (supervisor bootstrap)
//	GET  /debug/pprof/* → runtime profiles (only with -pprof)
//
// Logs are leveled key=value lines; every line carries a run_id unique to
// this daemon incarnation, which also appears in /stats and the
// keybin2d_build_info metric, so logs, scrapes, and crash-cycle restarts
// correlate. -trace-log additionally appends every finished pipeline
// trace as one JSON line to the named file.
//
// With -range the raw per-dimension bounds are predetermined (the paper's
// in-situ assumption) and the daemon serves labels from the first refit
// without a warmup buffer. SIGINT/SIGTERM drain gracefully: the listener
// stops, every accepted batch is applied, and a final checkpoint is
// written before exit.
//
// With -wal-dir every accepted batch is logged (and under -fsync always,
// fsynced) before the 202 ack, so even a kill -9 loses nothing that was
// acknowledged: on restart the daemon restores the newest checkpoint and
// replays the WAL tail past it.
//
// With -follow the daemon runs as a follower replica: it tails the
// primary's WAL, replays every acked batch into its own stream (stream
// flags must match the primary's), and serves reads while answering
// /ingest with 421 + the primary's URL. POST /promote turns it into a
// primary at its replayed horizon — with -wal-dir also set, the local WAL
// opens at that horizon and acks become durable again.
//
// Under a failover supervisor (cmd/keybin2failover) promotions carry
// monotone fencing epochs: a node at epoch E answers any request tokened
// with a NEWER epoch with 412 + {"error":"stale epoch",...} — the typed
// signal that it is a fenced zombie, not the primary. Epochs are
// deliberately not persisted; a restarted node rejoins at -epoch
// (default 0, unmanaged) and the supervisor re-fences it from the
// fleet's live epoch.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"keybin2/internal/core"
	"keybin2/internal/obs"
	"keybin2/internal/server"
)

type daemonOpts struct {
	addr       string
	dims       int
	trials     int
	seed       int64
	warmup     int
	period     int
	decay      float64
	depth      int
	rawRange   string
	queueDepth int
	maxBatch   int
	retryAfter time.Duration
	ckptPath   string
	ckptEvery  time.Duration
	drainAfter time.Duration
	walDir     string
	fsync      string
	fsyncEvery time.Duration
	walSegment int64
	logLevel   string
	traceLog   string
	slowSpan   time.Duration
	pprof      bool
	follow     string
	followPoll time.Duration
	nodeID     string
	shard      string
	epoch      int64
}

func main() {
	var o daemonOpts
	flag.StringVar(&o.addr, "addr", ":7420", "HTTP listen address")
	flag.IntVar(&o.dims, "dims", 0, "raw input dimensionality (required)")
	flag.IntVar(&o.trials, "trials", 5, "bootstrap projection trials")
	flag.Int64Var(&o.seed, "seed", 1, "random seed (must match across restarts of the same checkpoint)")
	flag.IntVar(&o.warmup, "warmup", 0, "points buffered to establish ranges (0 = default 500; ignored with -range)")
	flag.IntVar(&o.period, "period", 0, "points between refits (0 = default 1000)")
	flag.Float64Var(&o.decay, "decay", 0, "exponential forgetting factor in (0,1); 0 disables")
	flag.IntVar(&o.depth, "depth", 0, "binning tree depth (0 = stream default)")
	flag.StringVar(&o.rawRange, "range", "", "predetermined per-dimension bounds 'lo,hi' applied to every raw dim (skips warmup)")
	flag.IntVar(&o.queueDepth, "queue-depth", 64, "pending ingest batches before backpressure")
	flag.IntVar(&o.maxBatch, "max-batch", 65536, "max points per batch")
	flag.DurationVar(&o.retryAfter, "retry-after", 250*time.Millisecond, "backoff hint on backpressure rejections")
	flag.StringVar(&o.ckptPath, "checkpoint", "", "checkpoint file (enables periodic save + restore-on-start)")
	flag.DurationVar(&o.ckptEvery, "checkpoint-every", 30*time.Second, "checkpoint cadence")
	flag.DurationVar(&o.drainAfter, "drain-timeout", 30*time.Second, "graceful-shutdown drain bound")
	flag.StringVar(&o.walDir, "wal-dir", "", "write-ahead-log directory (enables crash-safe acks + replay-on-start)")
	flag.StringVar(&o.fsync, "fsync", "always", "WAL flush policy: always | interval | never")
	flag.DurationVar(&o.fsyncEvery, "fsync-interval", 100*time.Millisecond, "flush cadence under -fsync interval")
	flag.Int64Var(&o.walSegment, "wal-segment-bytes", 4<<20, "WAL segment rotation threshold")
	flag.StringVar(&o.logLevel, "log-level", "info", "minimum log level: debug | info | warn | error")
	flag.StringVar(&o.traceLog, "trace-log", "", "append finished pipeline traces as JSON lines to this file")
	flag.DurationVar(&o.slowSpan, "slow-span", 0, "log trace IDs of pipeline spans slower than this (0 = off)")
	flag.BoolVar(&o.pprof, "pprof", false, "serve net/http/pprof under /debug/pprof/")
	flag.StringVar(&o.follow, "follow", "", "run as a follower replica of the primary at this base URL (e.g. http://127.0.0.1:7420)")
	flag.DurationVar(&o.followPoll, "follow-poll", 2*time.Second, "long-poll wait against the primary's WAL tail when caught up")
	flag.StringVar(&o.nodeID, "node-id", "", "stable node identity for logs and /stats (default: the run_id, fresh per start)")
	flag.StringVar(&o.shard, "shard", "", "shard label this node serves under a cluster router (informational)")
	flag.Int64Var(&o.epoch, "epoch", 0, "initial fencing epoch (0 = unmanaged; a failover supervisor raises it)")
	flag.Parse()

	if err := run(o, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "keybin2d:", err)
		os.Exit(1)
	}
}

// buildConfig validates the CLI knobs into a server.Config. Misconfigured
// flag pairs fail here, before any socket is opened: in particular a refit
// period shorter than the warmup (core's typed StreamConfigError) and a
// malformed -range.
func buildConfig(o daemonOpts) (server.Config, error) {
	var cfg server.Config
	if o.dims <= 0 {
		return cfg, fmt.Errorf("-dims is required (got %d)", o.dims)
	}
	sc := core.StreamConfig{
		Config:      core.Config{Trials: o.trials, Seed: o.seed, Depth: o.depth},
		Dims:        o.dims,
		Warmup:      o.warmup,
		Period:      o.period,
		DecayFactor: o.decay,
	}
	if o.rawRange != "" {
		lohi := strings.SplitN(o.rawRange, ",", 2)
		if len(lohi) != 2 {
			return cfg, fmt.Errorf("-range wants 'lo,hi', got %q", o.rawRange)
		}
		lo, err1 := strconv.ParseFloat(strings.TrimSpace(lohi[0]), 64)
		hi, err2 := strconv.ParseFloat(strings.TrimSpace(lohi[1]), 64)
		if err1 != nil || err2 != nil || lo >= hi {
			return cfg, fmt.Errorf("-range wants numeric lo < hi, got %q", o.rawRange)
		}
		ranges := make([][2]float64, o.dims)
		for i := range ranges {
			ranges[i] = [2]float64{lo, hi}
		}
		sc.RawRanges = ranges
	}
	if err := sc.Validate(); err != nil {
		var sce *core.StreamConfigError
		if errors.As(err, &sce) {
			return cfg, fmt.Errorf("bad flags: %w", err)
		}
		return cfg, err
	}
	if _, err := server.ParseFsyncPolicy(o.fsync); err != nil {
		return cfg, fmt.Errorf("bad flags: %w", err)
	}
	if o.epoch < 0 {
		return cfg, fmt.Errorf("-epoch must be ≥ 0 (got %d)", o.epoch)
	}
	if _, err := obs.ParseLevel(o.logLevel); err != nil {
		return cfg, fmt.Errorf("bad flags: %w", err)
	}
	cfg = server.Config{
		Stream:          sc,
		QueueDepth:      o.queueDepth,
		MaxBatchPoints:  o.maxBatch,
		RetryAfter:      o.retryAfter,
		CheckpointPath:  o.ckptPath,
		CheckpointEvery: o.ckptEvery,
		WALDir:          o.walDir,
		Fsync:           o.fsync,
		FsyncInterval:   o.fsyncEvery,
		WALSegmentBytes: o.walSegment,
		RunID:           obs.NewRunID(),
		EnablePprof:     o.pprof,
		Logf:            log.Printf,
		FollowURL:       o.follow,
		FollowPoll:      o.followPoll,
		NodeID:          o.nodeID,
		Shard:           o.shard,
		Epoch:           o.epoch,
	}
	return cfg, nil
}

// run starts the daemon and blocks until a signal (or a close of stop,
// which tests use) triggers the graceful drain. When ready is non-nil it
// receives the bound listen address once serving.
func run(o daemonOpts, stop <-chan struct{}, ready chan<- net.Addr) error {
	cfg, err := buildConfig(o)
	if err != nil {
		return err
	}
	lvl, _ := obs.ParseLevel(o.logLevel) // validated by buildConfig
	logger := obs.NewLogger(os.Stderr, lvl, obs.KV("run_id", cfg.RunID))
	cfg.Logf = logger.Logf

	cfg.Tracer = obs.NewTracer(256)
	cfg.Tracer.SetRunID(cfg.RunID)
	if o.traceLog != "" {
		f, err := os.OpenFile(o.traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("trace log: %w", err)
		}
		defer f.Close()
		cfg.Tracer.SetLogSink(func(line []byte) { f.Write(line) })
	}
	if o.slowSpan > 0 {
		cfg.Tracer.SetSlowSpanLog(o.slowSpan, logger)
	}

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr()
	}
	hs := &http.Server{Handler: srv.Handler()}
	srv.Start()
	nodeID := o.nodeID
	if nodeID == "" {
		nodeID = cfg.RunID // the server's own fallback
	}
	logger.Info("listening",
		obs.KV("addr", ln.Addr()), obs.KV("node_id", nodeID), obs.KV("shard", o.shard),
		obs.KV("dims", o.dims), obs.KV("queue", o.queueDepth),
		obs.KV("checkpoint", o.ckptPath), obs.KV("wal_dir", o.walDir), obs.KV("pprof", o.pprof))

	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Info("draining", obs.KV("signal", s))
	case <-stop:
		logger.Info("draining", obs.KV("signal", "stop requested"))
	case err := <-httpErr:
		srv.Stop(context.Background())
		return err
	}

	// Graceful order: stop the listener first so no handler can enqueue
	// behind the drain, then drain the queue and write the final
	// checkpoint.
	ctx, cancel := context.WithTimeout(context.Background(), o.drainAfter)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Stop(ctx); err != nil {
		return err
	}
	st := srv.Stats()
	logger.Info("drained",
		obs.KV("seen", st.Seen), obs.KV("refits", st.Refits), obs.KV("checkpoints", st.Checkpoints))
	return nil
}
