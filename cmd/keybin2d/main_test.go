package main

import (
	"context"
	"errors"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"keybin2/internal/client"
	"keybin2/internal/core"
	"keybin2/internal/synth"
	"keybin2/internal/xrand"
)

func baseOpts() daemonOpts {
	return daemonOpts{
		addr: "127.0.0.1:0", dims: 4, trials: 2, seed: 9,
		rawRange: "-12,12", period: 250,
		queueDepth: 32, maxBatch: 65536,
		retryAfter: 50 * time.Millisecond,
		ckptEvery:  time.Hour, drainAfter: 30 * time.Second,
	}
}

// TestBuildConfigValidation pins the CLI-level rejections: missing dims,
// malformed -range, out-of-range decay, and the swapped period/warmup
// pair surface before any socket is opened.
func TestBuildConfigValidation(t *testing.T) {
	mut := func(f func(*daemonOpts)) daemonOpts {
		o := baseOpts()
		f(&o)
		return o
	}
	cases := []struct {
		name string
		o    daemonOpts
		want string // error substring ("" = valid)
	}{
		{"valid", baseOpts(), ""},
		{"missing dims", mut(func(o *daemonOpts) { o.dims = 0 }), "-dims"},
		{"bad range", mut(func(o *daemonOpts) { o.rawRange = "low,high" }), "-range"},
		{"reversed range", mut(func(o *daemonOpts) { o.rawRange = "5,-5" }), "-range"},
		{"decay too big", mut(func(o *daemonOpts) { o.decay = 1.5 }), "DecayFactor"},
		{"period under warmup", mut(func(o *daemonOpts) {
			o.rawRange = ""
			o.warmup = 1000
			o.period = 200
		}), "warmup"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := buildConfig(tc.o)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid flags rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error mentioning %q, got %v", tc.want, err)
			}
		})
	}
	// The period/warmup case must be core's typed error.
	o := baseOpts()
	o.rawRange, o.warmup, o.period = "", 1000, 200
	_, err := buildConfig(o)
	var sce *core.StreamConfigError
	if !errors.As(err, &sce) {
		t.Fatalf("want StreamConfigError through the CLI, got %v", err)
	}
}

// TestDaemonLifecycle boots the daemon on an ephemeral port, drives real
// traffic through the client, stops it, and restarts from the checkpoint
// asserting the state survived.
func TestDaemonLifecycle(t *testing.T) {
	dir := t.TempDir()
	o := baseOpts()
	o.ckptPath = filepath.Join(dir, "state.kb2s")

	boot := func() (*client.Client, chan struct{}, chan error) {
		stop := make(chan struct{})
		ready := make(chan net.Addr, 1)
		errc := make(chan error, 1)
		go func() { errc <- run(o, stop, ready) }()
		select {
		case addr := <-ready:
			return client.New("http://" + addr.String()), stop, errc
		case err := <-errc:
			t.Fatalf("daemon died on boot: %v", err)
			return nil, nil, nil
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	c, stop, errc := boot()
	spec := synth.AutoMixture(3, 4, 6, 1, xrand.New(31))
	rng := xrand.New(32)
	for i := 0; i < 6; i++ {
		batch, _ := spec.Sample(200, rng)
		if err := c.Ingest(ctx, batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitSeen(ctx, 1200); err != nil {
		t.Fatal(err)
	}
	close(stop)
	if err := <-errc; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	c2, stop2, errc2 := boot()
	st, err := c2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Seen != 1200 || st.Refits == 0 {
		t.Fatalf("restart lost state: %+v", st)
	}
	close(stop2)
	if err := <-errc2; err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}
