// Command datagen emits the synthetic datasets the evaluation uses, as
// labeled CSV, for inspection or external tooling.
//
// Usage:
//
//	datagen -kind mixture -points 10000 -dims 20 -k 4 > mixture.csv
//	datagen -kind correlated -points 5000 > correlated.csv
//	datagen -kind six > six.csv
//	datagen -kind boxes -k 3 -dims 8 > boxes.csv
//	datagen -kind trajectory -residues 60 -frames 2000 > traj.csv
//
// All outputs append the ground-truth label as the last column (for
// trajectories: the planted meta-stable phase, -1 in transitions).
package main

import (
	"flag"
	"fmt"
	"os"

	"keybin2/internal/dataio"
	"keybin2/internal/linalg"
	"keybin2/internal/synth"
	"keybin2/internal/trajectory"
	"keybin2/internal/xrand"
)

func main() {
	var (
		kind     = flag.String("kind", "mixture", "mixture | correlated | six | boxes | trajectory")
		points   = flag.Int("points", 10000, "number of points (mixture/correlated/six/boxes)")
		dims     = flag.Int("dims", 20, "dimensions (mixture/boxes)")
		k        = flag.Int("k", 4, "clusters (mixture/boxes)")
		spread   = flag.Float64("spread", 6, "mixture center spread")
		noise    = flag.Int("noise", 0, "uniform background noise points to append")
		residues = flag.Int("residues", 60, "trajectory residues")
		frames   = flag.Int("frames", 2000, "trajectory frames")
		phases   = flag.Int("phases", 6, "trajectory meta-stable phases")
		features = flag.Bool("features", false, "emit secondary-structure features instead of raw angles (trajectory)")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	data, labels, err := generate(options{
		kind: *kind, points: *points, dims: *dims, k: *k, spread: *spread,
		noise: *noise, residues: *residues, frames: *frames, phases: *phases,
		features: *features, seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		flag.Usage()
		os.Exit(2)
	}
	exitOn(dataio.WriteLabeled(os.Stdout, data, labels, nil))
}

type options struct {
	kind                            string
	points, dims, k                 int
	spread                          float64
	noise, residues, frames, phases int
	features                        bool
	seed                            int64
}

// generate builds the requested dataset; separated from main for testing.
func generate(o options) (*linalg.Matrix, []int, error) {
	var data *linalg.Matrix
	var labels []int
	switch o.kind {
	case "mixture":
		spec := synth.AutoMixture(o.k, o.dims, o.spread, 1, xrand.New(o.seed))
		data, labels = spec.Sample(o.points, xrand.New(o.seed+1))
	case "correlated":
		data, labels = synth.Correlated2D(o.points, 3, xrand.New(o.seed))
	case "six":
		data, labels = synth.Six2D(o.points, xrand.New(o.seed))
	case "boxes":
		data, labels = synth.Boxes(o.k, o.dims, o.points, xrand.New(o.seed))
	case "trajectory":
		tr, err := trajectory.Generate(trajectory.Spec{
			Residues: o.residues, Frames: o.frames, Phases: o.phases, Seed: o.seed,
		})
		if err != nil {
			return nil, nil, err
		}
		if o.features {
			data = tr.Features()
		} else {
			data = tr.Angles
		}
		labels = tr.Phase
	default:
		return nil, nil, fmt.Errorf("unknown kind %q", o.kind)
	}
	if o.noise > 0 {
		data, labels = synth.WithNoise(data, labels, o.noise, 1, xrand.New(o.seed+2))
	}
	return data, labels, nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}
