package main

import "testing"

func TestGenerateKinds(t *testing.T) {
	cases := []struct {
		name string
		o    options
		rows int
		cols int
	}{
		{"mixture", options{kind: "mixture", points: 100, dims: 5, k: 3, spread: 6, seed: 1}, 100, 5},
		{"correlated", options{kind: "correlated", points: 80, seed: 1}, 80, 2},
		{"six", options{kind: "six", points: 60, seed: 1}, 60, 2},
		{"boxes", options{kind: "boxes", points: 90, dims: 4, k: 2, seed: 1}, 90, 4},
		{"trajectory-angles", options{kind: "trajectory", residues: 10, frames: 600, phases: 2, seed: 1}, 600, 30},
		{"trajectory-features", options{kind: "trajectory", residues: 10, frames: 600, phases: 2, features: true, seed: 1}, 600, 10},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			data, labels, err := generate(c.o)
			if err != nil {
				t.Fatal(err)
			}
			if data.Rows != c.rows || data.Cols != c.cols {
				t.Fatalf("shape %dx%d want %dx%d", data.Rows, data.Cols, c.rows, c.cols)
			}
			if len(labels) != c.rows {
				t.Fatalf("%d labels", len(labels))
			}
		})
	}
}

func TestGenerateNoise(t *testing.T) {
	data, labels, err := generate(options{kind: "six", points: 50, noise: 10, seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if data.Rows != 60 || labels[59] != -1 {
		t.Fatalf("noise handling: rows %d last label %d", data.Rows, labels[59])
	}
}

func TestGenerateUnknownKind(t *testing.T) {
	if _, _, err := generate(options{kind: "nope"}); err == nil {
		t.Fatal("unknown kind must fail")
	}
}
