// Command fullscale smoke-tests the paper's headline design point — 16
// ranks at 1280 dimensions with the largest per-rank shard this host's
// memory allows — and prints time, accuracy, and total traffic. benchtab
// -full runs the complete grid; this binary answers "does the headline
// configuration work at scale" in one shot.
package main

import (
	"fmt"
	"time"

	"keybin2/internal/core"
	"keybin2/internal/eval"
	"keybin2/internal/linalg"
	"keybin2/internal/mpi"
	"keybin2/internal/synth"
	"keybin2/internal/xrand"
)

// Paper-scale single design point: 16 ranks × 80,000 points × 1280 dims.
func main() {
	const ranks, perRank, dims = 16, 40000, 1280 // half the paper per-rank size: the full 13 GB dataset exceeds this host
	fmt.Println("generating 640k x 1280 mixture...")
	spec := synth.AutoMixture(4, dims, 6, 1, xrand.New(1))
	gen := time.Now()
	shards := make([]*linalg.Matrix, ranks)
	truths := make([][]int, ranks)
	for r := 0; r < ranks; r++ {
		data, truth := spec.Sample(perRank, xrand.New(int64(2+r)))
		shards[r], truths[r] = data, truth
	}
	fmt.Printf("generated in %v\n", time.Since(gen).Round(time.Second))

	start := time.Now()
	type out struct {
		labels []int
		bytes  int64
	}
	results, err := mpi.RunCollect(ranks, func(c *mpi.Comm) (out, error) {
		_, labels, err := core.FitDistributed(c, shards[c.Rank()], core.Config{Seed: 99})
		return out{labels: labels, bytes: c.Stats().Bytes()}, err
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	elapsed := time.Since(start)
	var pred, truth []int
	var bytes int64
	for r := range results {
		pred = append(pred, results[r].labels...)
		truth = append(truth, truths[r]...)
		bytes += results[r].bytes
	}
	p, rc, f1 := eval.PrecisionRecallF1(pred, truth)
	fmt.Printf("PAPER-SCALE KeyBin2: 640k pts x 1280 dims (half paper scale: host RAM) on 16 ranks\n")
	fmt.Printf("time %v  precision %.3f  recall %.3f  f1 %.3f  traffic %d KiB total\n",
		elapsed.Round(time.Millisecond), p, rc, f1, bytes/1024)
}
