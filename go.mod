module keybin2

go 1.22
