package keybin2_test

import (
	"fmt"

	"keybin2"
	"keybin2/internal/synth"
	"keybin2/internal/xrand"
)

// ExampleFit clusters a small synthetic mixture and prints the shape of
// the result. KeyBin2 needs no cluster count K; the model can label points
// it never saw.
func ExampleFit() {
	spec := synth.AutoMixture(3, 16, 6, 1, xrand.New(1))
	data, truth := spec.Sample(5000, xrand.New(2))

	model, labels, err := keybin2.Fit(data, keybin2.Config{Seed: 3})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	_, _, f1 := keybin2.PrecisionRecallF1(labels, truth)
	fmt.Printf("found at least the 3 true clusters: %v, F1 >= 0.9: %v\n",
		model.K() >= 3, f1 >= 0.9)

	label, _ := model.Assign(data.Row(0))
	fmt.Printf("assign matches fit: %v\n", label == labels[0])
	// Output:
	// found at least the 3 true clusters: true, F1 >= 0.9: true
	// assign matches fit: true
}

// ExampleFitDistributed shards data across four in-process ranks; only
// histogram-sized payloads move between them.
func ExampleFitDistributed() {
	spec := synth.AutoMixture(3, 12, 6, 1, xrand.New(4))
	data, _ := spec.Sample(4000, xrand.New(5))
	const ranks = 4
	ks := make([]int, ranks)
	err := keybin2.Run(ranks, func(c *keybin2.Comm) error {
		lo, hi := synth.Shard(data.Rows, ranks, c.Rank())
		local := keybin2.NewMatrix(hi-lo, data.Cols)
		copy(local.Data, data.Data[lo*data.Cols:hi*data.Cols])
		model, _, err := keybin2.FitDistributed(c, local, keybin2.Config{Seed: 6})
		ks[c.Rank()] = model.K()
		return err
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	agree := true
	for _, k := range ks[1:] {
		if k != ks[0] {
			agree = false
		}
	}
	fmt.Printf("all ranks agree on the model: %v\n", agree)
	// Output:
	// all ranks agree on the model: true
}

// ExampleNewStream ingests a stream with bounded memory: only histograms
// and key sketches are retained, never points.
func ExampleNewStream() {
	st, err := keybin2.NewStream(keybin2.StreamConfig{
		Config: keybin2.Config{Seed: 7},
		Dims:   8,
		Warmup: 200,
		Period: 200,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	spec := synth.AutoMixture(2, 8, 6, 1, xrand.New(8))
	src := spec.Stream(1000, xrand.New(9))
	labeled := 0
	for {
		x, _, ok := src.Next()
		if !ok {
			break
		}
		if l, _ := st.Ingest(x); l != keybin2.Noise {
			labeled++
		}
	}
	fmt.Printf("labeled most post-warmup points: %v\n", labeled > 600)
	// Output:
	// labeled most post-warmup points: true
}
