// Package keybin2 is a Go implementation of KeyBin2 (Chen, Peterson,
// Benson, Taufer, Estrada — ICPP 2018): key-based distributed clustering
// for scalable and in-situ analysis.
//
// KeyBin2 clusters data without pairwise distance computations. Each point
// independently receives a hierarchical key — its path through a binary
// binning tree per dimension of a randomly projected subspace — and only
// per-dimension binning histograms (kilobytes, regardless of data size)
// are ever communicated. A discrete-optimization partitioner cuts each
// histogram at density valleys; keys map points onto the resulting primary
// clusters; bootstrapping over several random projections selects the most
// separable view with a histogram-space Calinski–Harabasz index. The
// algorithm is embarrassingly parallel, needs no cluster count K, and runs
// in batch, distributed, and streaming (in-situ) modes.
//
// # Quick start
//
//	model, labels, err := keybin2.Fit(data, keybin2.Config{Seed: 1})
//
// data is a row-major point matrix (see NewMatrix / FromRows); labels
// assigns every row a cluster id (Noise = -1 for outliers); model labels
// unseen points via model.Assign.
//
// # Distributed
//
//	err := keybin2.Run(ranks, func(c *keybin2.Comm) error {
//		model, labels, err := keybin2.FitDistributed(c, localShard, cfg)
//		...
//	})
//
// Each rank holds its own shard; only histograms move. Run executes ranks
// as goroutines; DialTCP/RunTCP provide the same semantics across real
// sockets. Config.Ring switches histogram consolidation to a ring topology.
//
// # Streaming
//
//	st, _ := keybin2.NewStream(keybin2.StreamConfig{Config: cfg, Dims: d})
//	label, _ := st.Ingest(point) // memory stays flat forever
//
// The streaming engine keeps histograms and key sketches only, refits
// periodically, and holds cluster labels stable across refits.
//
// The experiment harness reproducing every table and figure of the paper
// lives in cmd/benchtab; see DESIGN.md and EXPERIMENTS.md.
package keybin2

import (
	"keybin2/internal/cluster"
	"keybin2/internal/core"
	"keybin2/internal/eval"
	"keybin2/internal/linalg"
	"keybin2/internal/mpi"
	"keybin2/internal/projection"
)

// Noise is the label assigned to points that belong to no cluster.
const Noise = cluster.Noise

// Matrix is a dense row-major matrix: one point per row.
type Matrix = linalg.Matrix

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix { return linalg.NewMatrix(rows, cols) }

// FromRows builds a matrix from a slice of equal-length rows (copied).
func FromRows(rows [][]float64) (*Matrix, error) { return linalg.FromRows(rows) }

// Config tunes a KeyBin2 fit; the zero value (plus a Seed) selects the
// paper's defaults. See internal/core.Config for field documentation.
type Config = core.Config

// Model is a fitted clustering; it can label unseen points (Assign).
type Model = core.Model

// Fit clusters the rows of data on a single process.
func Fit(data *Matrix, cfg Config) (*Model, []int, error) { return core.Fit(data, cfg) }

// DecodeModel parses a payload produced by Model.Encode, restoring a model
// that labels points exactly like the original — fitted clusterings can be
// checkpointed and shipped to late-joining workers.
func DecodeModel(b []byte) (*Model, error) { return core.DecodeModel(b) }

// Comm is one rank's endpoint in a message-passing world.
type Comm = mpi.Comm

// Run executes fn on size in-process ranks and waits for all of them.
func Run(size int, fn func(c *Comm) error) error { return mpi.Run(size, fn) }

// FitDistributed clusters data sharded across the ranks of comm; every
// rank receives the same global model and labels for its local rows.
func FitDistributed(comm *Comm, local *Matrix, cfg Config) (*Model, []int, error) {
	return core.FitDistributed(comm, local, cfg)
}

// StreamConfig tunes the streaming (in-situ) mode.
type StreamConfig = core.StreamConfig

// Stream ingests points one at a time with bounded memory.
type Stream = core.Stream

// NewStream creates a streaming clusterer.
func NewStream(cfg StreamConfig) (*Stream, error) { return core.NewStream(cfg) }

// DecodeStream restores a stream checkpoint produced by Stream.Encode;
// cfg must match the original stream's configuration. Ingestion resumes
// exactly where the checkpoint was taken.
func DecodeStream(cfg StreamConfig, b []byte) (*Stream, error) { return core.DecodeStream(cfg, b) }

// ProjectionKind selects the random-projection construction.
type ProjectionKind = projection.Kind

// Projection matrix constructions.
const (
	Gaussian    = projection.Gaussian
	Achlioptas  = projection.Achlioptas
	Orthonormal = projection.Orthonormal
)

// TargetDims returns the paper's N_rp = max(2, ⌈1.5·log₂N⌉) rule.
func TargetDims(n int) int { return projection.TargetDims(n) }

// PrecisionRecallF1 computes pairwise precision, recall, and F1 between a
// predicted and a true labeling (the paper's §4 metrics).
func PrecisionRecallF1(pred, truth []int) (precision, recall, f1 float64) {
	return eval.PrecisionRecallF1(pred, truth)
}

// ARI returns the adjusted Rand index between two labelings.
func ARI(pred, truth []int) float64 { return eval.ARI(pred, truth) }

// NMI returns the normalized mutual information between two labelings.
func NMI(pred, truth []int) float64 { return eval.NMI(pred, truth) }
