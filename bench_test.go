// Benchmarks regenerating each of the paper's tables and figures at bench
// scale, plus microbenchmarks of the pipeline stages. cmd/benchtab prints
// the paper-formatted rows; these benches track the cost of each
// experiment and of the kernels underneath it.
//
//	go test -bench=. -benchmem
package keybin2_test

import (
	"fmt"
	"testing"

	"keybin2/internal/core"
	"keybin2/internal/dbscan"
	"keybin2/internal/experiments"
	"keybin2/internal/histogram"
	"keybin2/internal/kmeans"
	"keybin2/internal/linalg"
	"keybin2/internal/mpi"
	"keybin2/internal/partition"
	"keybin2/internal/projection"
	"keybin2/internal/synth"
	"keybin2/internal/xrand"
)

// benchScale sizes the experiment grid for benchmarking: one repeat, small
// shards, the full design otherwise.
func benchScale() experiments.Scale {
	s := experiments.Default()
	s.PointsPerProc = 1500
	s.Repeats = 1
	s.Procs = 2
	s.DimLadder = []int{20, 80}
	s.ProcLadder = []int{1, 2}
	s.Table2Dims = 80
	s.TrajectoryFrameDiv = 20
	return s
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchScale()
		s.Seed = int64(i + 1)
		if rows := experiments.Table1(s); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchScale()
		s.Seed = int64(i + 1)
		if rows := experiments.Table2(s); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchScale()
		s.Seed = int64(i + 1)
		if st := experiments.Table3(s); st.Count != 31 {
			b.Fatal("bad suite")
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchScale()
		s.Seed = int64(i + 1)
		if rows := experiments.Figure1(s); len(rows) != 6 {
			b.Fatal("panels")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchScale()
		s.Seed = int64(i + 1)
		if _, err := experiments.Figure2(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchScale()
		s.Seed = int64(i + 1)
		if _, err := experiments.Figure3(s, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchScale()
		s.Seed = int64(i + 1)
		if _, err := experiments.Figure4(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationAPartitioners(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchScale()
		s.Seed = int64(i + 1)
		if rows := experiments.AblationA(s); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkAblationBTargetDims(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchScale()
		s.Seed = int64(i + 1)
		if rows := experiments.AblationB(s); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkAblationCReduceTopology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchScale()
		s.Seed = int64(i + 1)
		if rows := experiments.AblationC(s); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// --- pipeline-stage microbenchmarks ---

// BenchmarkFitByDims tracks the Table 1 scaling claim at the kernel level:
// serial KeyBin2 fit cost as dimensionality quadruples.
func BenchmarkFitByDims(b *testing.B) {
	for _, dims := range []int{20, 80, 320} {
		spec := synth.AutoMixture(4, dims, 6, 1, xrand.New(1))
		data, _ := spec.Sample(4000, xrand.New(2))
		b.Run(fmt.Sprintf("dims%d", dims), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Fit(data, core.Config{Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKMeansByDims is the baseline counterpart of BenchmarkFitByDims.
func BenchmarkKMeansByDims(b *testing.B) {
	for _, dims := range []int{20, 80, 320} {
		spec := synth.AutoMixture(4, dims, 6, 1, xrand.New(1))
		data, _ := spec.Sample(4000, xrand.New(2))
		b.Run(fmt.Sprintf("dims%d", dims), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := kmeans.Fit(data, kmeans.Config{K: 4, Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkProjection(b *testing.B) {
	data := linalg.NewMatrix(10000, 320)
	rng := xrand.New(1)
	for i := range data.Data {
		data.Data[i] = rng.Norm()
	}
	batch, err := projection.NewBatch(projection.Gaussian, 320, projection.TargetDims(320), 5, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := batch.Apply(data, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKeyAssignment(b *testing.B) {
	set, err := histogram.NewSet(make([]float64, 13), ones(13, 1), 9)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	points := make([][]float64, 10000)
	for i := range points {
		points[i] = make([]float64, 13)
		for j := range points[i] {
			points[i][j] = rng.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range points {
			set.AddPoint(p)
		}
	}
	b.ReportMetric(float64(10000*b.N)/b.Elapsed().Seconds(), "points/s")
}

func ones(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func BenchmarkHistogramMerge(b *testing.B) {
	mk := func() *histogram.Set {
		set, _ := histogram.NewSet(make([]float64, 16), ones(16, 1), 9)
		rng := xrand.New(2)
		p := make([]float64, 16)
		for i := 0; i < 1000; i++ {
			for j := range p {
				p[j] = rng.Float64()
			}
			set.AddPoint(p)
		}
		return set
	}
	a, c := mk(), mk()
	enc := c.Encode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := histogram.CombineEncoded(a.Encode(), enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartition(b *testing.B) {
	h := histogram.New(0, 100, 9)
	rng := xrand.New(3)
	for i := 0; i < 100000; i++ {
		c := 25.0
		if i%2 == 0 {
			c = 75
		}
		h.Add(rng.Gaussian(c, 6))
	}
	for _, method := range []partition.Method{partition.DiscreteOpt, partition.KDE, partition.Threshold} {
		b.Run(method.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := partition.Partition(h, partition.Config{Method: method})
				if res.Segments() < 1 {
					b.Fatal("no segments")
				}
			}
		})
	}
}

// BenchmarkStreamIngest measures per-point in-situ cost (the paper reports
// ~0.0004 s/frame on its protein workload).
func BenchmarkStreamIngest(b *testing.B) {
	st, err := core.NewStream(core.StreamConfig{
		Config: core.Config{Seed: 1}, Dims: 32,
		RawRanges: rawRanges(32), Period: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	spec := synth.AutoMixture(3, 32, 6, 1, xrand.New(4))
	src := spec.Stream(0, xrand.New(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, _, _ := src.Next()
		if _, err := st.Ingest(x); err != nil {
			b.Fatal(err)
		}
	}
}

func rawRanges(dims int) [][2]float64 {
	out := make([][2]float64, dims)
	for j := range out {
		out[j] = [2]float64{-12, 12}
	}
	return out
}

// BenchmarkDistributedFitByRanks tracks weak-scaling cost of the
// distributed fit on in-process ranks.
func BenchmarkDistributedFitByRanks(b *testing.B) {
	for _, ranks := range []int{1, 2, 4, 8} {
		spec := synth.AutoMixture(4, 64, 6, 1, xrand.New(1))
		data, _ := spec.Sample(ranks*2000, xrand.New(2))
		shards := make([]*linalg.Matrix, ranks)
		for r := 0; r < ranks; r++ {
			lo, hi := synth.Shard(data.Rows, ranks, r)
			shards[r] = linalg.NewMatrix(hi-lo, data.Cols)
			copy(shards[r].Data, data.Data[lo*data.Cols:hi*data.Cols])
		}
		b.Run(fmt.Sprintf("ranks%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := mpi.Run(ranks, func(c *mpi.Comm) error {
					_, _, err := core.FitDistributed(c, shards[c.Rank()], core.Config{Seed: int64(i)})
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReduceTopology compares binomial-tree and ring consolidation of
// a realistic histogram payload.
func BenchmarkReduceTopology(b *testing.B) {
	const ranks = 8
	payload := make([]uint64, 5*13*512) // 5 trials × 13 dims × 512 bins
	for i := range payload {
		payload[i] = uint64(i % 97)
	}
	for _, ring := range []bool{false, true} {
		name := "tree"
		if ring {
			name = "ring"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := mpi.Run(ranks, func(c *mpi.Comm) error {
					var err error
					if ring {
						_, err = c.RingAllreduce(mpi.EncodeUint64s(payload), mpi.SumUint64s)
					} else {
						_, err = c.Allreduce(mpi.EncodeUint64s(payload), mpi.SumUint64s)
					}
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkModelCodec measures checkpoint serialization round trips.
func BenchmarkModelCodec(b *testing.B) {
	spec := synth.AutoMixture(4, 64, 6, 1, xrand.New(3))
	data, _ := spec.Sample(5000, xrand.New(4))
	model, _, err := core.Fit(data, core.Config{Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := model.Encode()
		if _, err := core.DecodeModel(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDBSCANDistributed measures the comparator's distributed cost —
// the data-movement-heavy path KeyBin2 avoids.
func BenchmarkDBSCANDistributed(b *testing.B) {
	spec := synth.AutoMixture(3, 4, 6, 0.4, xrand.New(6))
	data, _ := spec.Sample(4000, xrand.New(7))
	const ranks = 4
	shards := make([]*linalg.Matrix, ranks)
	for r := 0; r < ranks; r++ {
		lo, hi := synth.Shard(data.Rows, ranks, r)
		shards[r] = linalg.NewMatrix(hi-lo, data.Cols)
		copy(shards[r].Data, data.Data[lo*data.Cols:hi*data.Cols])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := mpi.Run(ranks, func(c *mpi.Comm) error {
			_, err := dbscan.FitDistributed(c, shards[c.Rank()], dbscan.Config{Eps: 0.5, MinPts: 5})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
