// Quickstart: cluster a synthetic Gaussian mixture with KeyBin2 and
// inspect what the algorithm learned.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"keybin2/internal/cluster"
	"keybin2/internal/core"
	"keybin2/internal/eval"
	"keybin2/internal/synth"
	"keybin2/internal/xrand"
)

func main() {
	// 20,000 points in 64 dimensions from four Gaussian clusters, plus
	// noise — the kind of data where distance-based methods start paying
	// for every pairwise computation.
	spec := synth.AutoMixture(4, 64, 6, 1, xrand.New(1))
	data, truth := spec.Sample(20000, xrand.New(2))
	data, truth = synth.WithNoise(data, truth, 1000, 2, xrand.New(3))

	// Fit: random projection to ~9 dims, hierarchical binning, histogram
	// partitioning, bootstrap over 5 projections. No K required.
	model, labels, err := core.Fit(data, core.Config{Seed: 4})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clusters found: %d (true components: %d + noise)\n", model.K(), spec.K())
	fmt.Printf("winning projection trial: %d of %d, histogram-CH %.1f\n",
		model.Trial, len(model.TrialAssessments), model.Assessment.CH)
	fmt.Printf("projected dimensions: %d (from %d)\n", len(model.Set.Dims), data.Cols)

	collapsed := 0
	for _, c := range model.Collapsed {
		if c {
			collapsed++
		}
	}
	fmt.Printf("dimensions collapsed as uninformative: %d\n", collapsed)

	p, r, f1 := eval.PrecisionRecallF1(labels, truth)
	fmt.Printf("pairwise precision %.3f, recall %.3f, F1 %.3f, ARI %.3f\n",
		p, r, f1, eval.ARI(labels, truth))

	noise := 0
	for _, l := range labels {
		if l == cluster.Noise {
			noise++
		}
	}
	fmt.Printf("points shed as noise: %d\n", noise)

	// The model labels points it has never seen — in-situ style.
	fresh, _ := spec.Sample(5, xrand.New(5))
	for i := 0; i < fresh.Rows; i++ {
		l, err := model.Assign(fresh.Row(i))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fresh point %d -> cluster %d\n", i, l)
	}
}
