// Streaming: in-situ clustering of an endless point stream whose
// distribution drifts mid-run. The engine keeps only histograms and key
// sketches — memory stays flat no matter how long the stream runs — and
// refits its partitions periodically, holding cluster labels stable across
// refits.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"keybin2/internal/cluster"
	"keybin2/internal/core"
	"keybin2/internal/synth"
	"keybin2/internal/xrand"
)

func main() {
	const dims = 24

	// Phase 1 of the stream: three clusters. Phase 2: one of them moves
	// and a fourth appears — simulation state drifting between regimes.
	phase1 := synth.AutoMixture(3, dims, 6, 1, xrand.New(1))
	phase2 := synth.AutoMixture(4, dims, 6, 1, xrand.New(99))

	// Fixed raw ranges (the paper's "predetermined space range"): the
	// stream must be able to bin regimes it has not seen yet — ranges
	// derived from a warmup sample of phase 1 would clamp phase 2's
	// clusters into edge bins.
	ranges := make([][2]float64, dims)
	for j := range ranges {
		ranges[j] = [2]float64{-12, 12}
	}
	st, err := core.NewStream(core.StreamConfig{
		Config:    core.Config{Seed: 2, Trials: 4},
		Dims:      dims,
		RawRanges: ranges,
		Period:    2000,
		// Exponential forgetting: at every refit the histograms and key
		// sketches decay, so the phase-1 regime fades instead of
		// accumulating stale clusters forever.
		DecayFactor: 0.7,
	})
	if err != nil {
		log.Fatal(err)
	}

	ingest := func(name string, spec *synth.MixtureSpec, n int, seed int64) {
		src := spec.Stream(n, xrand.New(seed))
		seen := map[int]int{}
		noise := 0
		for {
			x, _, ok := src.Next()
			if !ok {
				break
			}
			label, err := st.Ingest(x)
			if err != nil {
				log.Fatal(err)
			}
			if label == cluster.Noise {
				noise++
			} else {
				seen[label]++
			}
		}
		fmt.Printf("[%s] after %d points: model sees %d clusters; this batch hit %d distinct labels (%d unlabeled)\n",
			name, st.Seen(), modelK(st), len(seen), noise)
	}

	ingest("phase 1 (3 clusters)", phase1, 6000, 3)
	ingest("phase 1 continued", phase1, 6000, 4)
	ingest("phase 2 (drifted, 4 clusters)", phase2, 8000, 5)
	ingest("phase 2 continued", phase2, 8000, 6)

	// Force a final refit and report the model's view of the stream.
	if err := st.Refit(); err != nil {
		log.Fatal(err)
	}
	m := st.Model()
	fmt.Printf("final model: %d clusters (decay faded the drifted-away regime), projection trial %d, histogram-CH %.1f\n",
		m.K(), m.Trial, m.Assessment.CH)
	fmt.Printf("total ingested: %d points; histogram memory is independent of that count\n", st.Seen())
}

func modelK(st *core.Stream) int {
	if st.Model() == nil {
		return 0
	}
	return st.Model().K()
}
