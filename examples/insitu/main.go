// In-situ: the paper's deployment scenario end to end. Three ranks each
// run their own "simulation" (a protein-folding trajectory with different
// starting conditions), analyze frames in-situ with streaming KeyBin2, and
// periodically consolidate — exchanging only histograms and key sketches,
// never frames. After each sync every rank holds the same global model of
// the conformational space all simulations explored together, and a
// checkpoint of that model is serialized for late-joining workers.
//
//	go run ./examples/insitu
package main

import (
	"fmt"
	"log"

	"keybin2/internal/core"
	"keybin2/internal/mpi"
	"keybin2/internal/trajectory"
)

const (
	ranks    = 3
	residues = 40
	frames   = 3000
	syncEvry = 1000
)

func main() {
	type report struct {
		rank     int
		clusters int
		traffic  int64
		snapshot []byte
	}
	reports, err := mpi.RunCollect(ranks, func(c *mpi.Comm) (report, error) {
		// Each rank simulates a different trajectory of the same protein
		// (different seed = different starting conditions), sharing the
		// same feature space.
		tr, err := trajectory.Generate(trajectory.Spec{
			Residues: residues, Frames: frames, Phases: 3,
			Seed: int64(100 + c.Rank()),
		})
		if err != nil {
			return report{}, err
		}
		feats := tr.Features()

		st, err := core.NewStream(core.StreamConfig{
			Config: core.Config{Seed: 7, Trials: 3},
			Dims:   residues,
			// Secondary-structure codes live in [0, 5]; fixed ranges mean
			// no warmup and congruent histograms across ranks.
			RawRanges: ssRanges(residues),
			Period:    1 << 30, // refits happen at sync points only
		})
		if err != nil {
			return report{}, err
		}

		for i := 0; i < feats.Rows; i++ {
			if _, err := st.Ingest(feats.Row(i)); err != nil {
				return report{}, err
			}
			// Periodic consolidation: the in-situ analysis keeps up with
			// the simulation, and all ranks converge on one global model.
			if (i+1)%syncEvry == 0 {
				if err := st.SyncDistributed(c); err != nil {
					return report{}, err
				}
				if c.Rank() == 0 {
					fmt.Printf("[sync @ frame %4d] global model: %d conformational clusters over %d frames from %d simulations\n",
						i+1, st.Model().K(), st.Seen(), c.Size())
				}
			}
		}
		return report{
			rank:     c.Rank(),
			clusters: st.Model().K(),
			traffic:  c.Stats().Bytes(),
			snapshot: st.Model().Encode(),
		}, nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	for _, r := range reports {
		fmt.Printf("rank %d: %d clusters, %d KiB sent total (raw frames would have been %d KiB/rank)\n",
			r.rank, r.clusters, r.traffic/1024, int64(frames)*int64(residues)*8/1024)
	}

	// A late-joining worker receives the serialized model and labels fresh
	// frames of the same system — a continuation of rank 0's simulation —
	// without any refit.
	model, err := core.DecodeModel(reports[0].snapshot)
	if err != nil {
		log.Fatal(err)
	}
	fresh, err := trajectory.Generate(trajectory.Spec{
		Residues: residues, Frames: 600, Phases: 3, Seed: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	feats := fresh.Features()
	labeled := 0
	for i := 0; i < feats.Rows; i++ {
		l, err := model.Assign(feats.Row(i))
		if err != nil {
			log.Fatal(err)
		}
		if l >= 0 {
			labeled++
		}
	}
	fmt.Printf("\nlate joiner: checkpointed model (%d bytes) labeled %d/%d fresh frames with no refit\n",
		len(reports[0].snapshot), labeled, feats.Rows)
}

func ssRanges(residues int) [][2]float64 {
	out := make([][2]float64, residues)
	for j := range out {
		out[j] = [2]float64{-0.5, 5.5}
	}
	return out
}
