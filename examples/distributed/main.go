// Distributed: cluster data sharded across message-passing ranks, first
// over the in-process transport, then over real TCP sockets, comparing the
// binomial-tree and ring consolidation topologies and showing that only
// histogram-sized payloads ever move.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"keybin2/internal/core"
	"keybin2/internal/eval"
	"keybin2/internal/linalg"
	"keybin2/internal/mpi"
	"keybin2/internal/synth"
	"keybin2/internal/xrand"
)

const (
	ranks         = 4
	pointsPerRank = 10000
	dims          = 128
)

func main() {
	spec := synth.AutoMixture(4, dims, 6, 1, xrand.New(1))
	data, truth := spec.Sample(ranks*pointsPerRank, xrand.New(2))

	shard := func(rank int) *linalg.Matrix {
		lo, hi := synth.Shard(data.Rows, ranks, rank)
		sh := linalg.NewMatrix(hi-lo, data.Cols)
		copy(sh.Data, data.Data[lo*data.Cols:hi*data.Cols])
		return sh
	}

	for _, ring := range []bool{false, true} {
		topo := "binomial tree"
		if ring {
			topo = "ring"
		}
		type out struct {
			labels []int
			bytes  int64
			msgs   int64
		}
		start := time.Now()
		results, err := mpi.RunCollect(ranks, func(c *mpi.Comm) (out, error) {
			_, labels, err := core.FitDistributed(c, shard(c.Rank()), core.Config{Seed: 3, Ring: ring})
			return out{labels: labels, bytes: c.Stats().Bytes(), msgs: c.Stats().Messages()}, err
		})
		if err != nil {
			log.Fatal(err)
		}
		var pred []int
		var totalBytes, totalMsgs int64
		for _, r := range results {
			pred = append(pred, r.labels...)
			totalBytes += r.bytes
			totalMsgs += r.msgs
		}
		_, _, f1 := eval.PrecisionRecallF1(pred, truth)
		fmt.Printf("[in-process, %s] %d ranks × %d points × %d dims: F1=%.3f in %v\n",
			topo, ranks, pointsPerRank, dims, f1, time.Since(start).Round(time.Millisecond))
		fmt.Printf("  traffic: %d KiB total over %d messages (raw data would be %d MiB)\n",
			totalBytes/1024, totalMsgs, int64(data.Rows)*int64(dims)*8/(1<<20))
	}

	// The same fit over genuine TCP sockets on localhost: one listener per
	// rank, full mesh, identical collectives.
	addrs, err := mpi.FreeLocalAddrs(ranks)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	labelsByRank := make([][]int, ranks)
	err = mpi.RunTCP(addrs, 20*time.Second, func(c *mpi.Comm) error {
		_, labels, err := core.FitDistributed(c, shard(c.Rank()), core.Config{Seed: 3})
		labelsByRank[c.Rank()] = labels
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	var pred []int
	for _, l := range labelsByRank {
		pred = append(pred, l...)
	}
	_, _, f1 := eval.PrecisionRecallF1(pred, truth)
	fmt.Printf("[TCP mesh] same fit over localhost sockets: F1=%.3f in %v\n",
		f1, time.Since(start).Round(time.Millisecond))
}
