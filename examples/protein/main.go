// Protein: the paper's §5 case study — in-situ analysis of a protein
// folding trajectory. A synthetic MoDEL-like trajectory with planted
// meta-stable phases is featurized by per-residue secondary structure
// (Ramachandran classes), clustered frame-by-frame with KeyBin2 into
// "cluster fingerprints", and validated against the offline probabilistic
// HDR stability analysis (eqs. 3–4).
//
//	go run ./examples/protein
package main

import (
	"fmt"
	"log"
	"strings"

	"keybin2/internal/core"
	"keybin2/internal/trajectory"
)

func main() {
	spec := trajectory.Spec{
		Name: "1a70", Residues: 97, Frames: 6000, Phases: 6, Seed: 42,
	}
	tr, err := trajectory.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trajectory %s: %d frames × %d residues (%d torsion angles/frame)\n",
		spec.Name, spec.Frames, spec.Residues, 3*spec.Residues)

	// Featurize: every residue becomes its Ramachandran class.
	feats := tr.Features()

	// Cluster frames. KeyBin2 needs no K and touches each frame once —
	// this is what runs alongside the simulation in-situ.
	model, labels, err := core.Fit(feats, core.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fp := trajectory.NewFingerprint(labels, 25)
	fmt.Printf("KeyBin2: %d conformational clusters, %d fingerprint changes\n",
		model.K(), len(fp.Changes))

	// Offline validation: representative conformations by power-law
	// sampling, per-frame stability probabilities, 70%% HDR scores over a
	// trailing 100-frame window, and the eq. (4) stability rule.
	reps, err := trajectory.SampleRepresentatives(tr.Angles, 2*spec.Phases, 8)
	if err != nil {
		log.Fatal(err)
	}
	// Representatives sampled from the same basin are merged before the
	// eq. (4) gap test — duplicates would split a basin's probability.
	groups := trajectory.GroupRepresentatives(tr.Angles, reps, 0.5)
	probs := trajectory.CollapseColumns(trajectory.StabilityProbabilities(tr.Angles, reps), groups)
	scores := trajectory.StabilityScores(probs, 100, 0.7)
	stable := trajectory.StableLabels(scores, 0.1)
	smoothed := trajectory.NewFingerprint(stable, 25).Labels
	segments := trajectory.Segments(smoothed, 50)

	fmt.Printf("\nHDR meta-stable segments (rectangles of Figure 4):\n")
	for _, s := range segments {
		fmt.Printf("  frames %5d-%5d  conformation %d\n", s.Start, s.End, s.Label)
	}

	fmt.Printf("\nfingerprint segments (KeyBin2's view):\n")
	for _, s := range fp.Segments(50) {
		fmt.Printf("  frames %5d-%5d  cluster %d\n", s.Start, s.End, s.Label)
	}

	fmt.Printf("\nagreement: fingerprints vs HDR %.3f, vs planted phases %.3f (NMI)\n",
		fp.Agreement(stable), fp.Agreement(tr.Phase))

	// A coarse timeline: one character per 100 frames, letter = dominant
	// fingerprint cluster, '.' = transition.
	fmt.Printf("\ntimeline (1 char = 100 frames):\n  %s\n", timeline(fp.Labels, 100))
}

// timeline compresses labels into a char-per-bucket strip.
func timeline(labels []int, bucket int) string {
	var b strings.Builder
	for lo := 0; lo < len(labels); lo += bucket {
		hi := lo + bucket
		if hi > len(labels) {
			hi = len(labels)
		}
		counts := map[int]int{}
		for _, l := range labels[lo:hi] {
			counts[l]++
		}
		best, bestN := -1, 0
		for l, n := range counts {
			if n > bestN {
				best, bestN = l, n
			}
		}
		switch {
		case best < 0 || bestN < bucket/2:
			b.WriteByte('.')
		case best < 26:
			b.WriteByte(byte('A' + best))
		default:
			b.WriteByte('+')
		}
	}
	return b.String()
}
