package keybin2_test

import (
	"testing"

	"keybin2"
	"keybin2/internal/synth"
	"keybin2/internal/xrand"
)

// TestPublicAPIRoundTrip exercises the library exactly as a downstream user
// would: build a matrix, fit, evaluate, assign.
func TestPublicAPIRoundTrip(t *testing.T) {
	spec := synth.AutoMixture(3, 16, 6, 1, xrand.New(1))
	data, truth := spec.Sample(5000, xrand.New(2))

	model, labels, err := keybin2.Fit(data, keybin2.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p, r, f1 := keybin2.PrecisionRecallF1(labels, truth)
	if f1 < 0.6 {
		t.Fatalf("f1=%.3f p=%.3f r=%.3f", f1, p, r)
	}
	if keybin2.ARI(labels, truth) <= 0 || keybin2.NMI(labels, truth) <= 0 {
		t.Fatal("agreement indices")
	}
	if l, err := model.Assign(data.Row(0)); err != nil || l != labels[0] {
		t.Fatalf("assign: %d vs %d (%v)", l, labels[0], err)
	}
}

func TestPublicAPIDistributed(t *testing.T) {
	spec := synth.AutoMixture(3, 12, 6, 1, xrand.New(4))
	data, truth := spec.Sample(4000, xrand.New(5))
	const ranks = 2
	all := make([][]int, ranks)
	err := keybin2.Run(ranks, func(c *keybin2.Comm) error {
		lo, hi := synth.Shard(data.Rows, ranks, c.Rank())
		local := keybin2.NewMatrix(hi-lo, data.Cols)
		copy(local.Data, data.Data[lo*data.Cols:hi*data.Cols])
		_, labels, err := keybin2.FitDistributed(c, local, keybin2.Config{Seed: 6})
		all[c.Rank()] = labels
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	var pred []int
	for _, l := range all {
		pred = append(pred, l...)
	}
	if _, _, f1 := keybin2.PrecisionRecallF1(pred, truth); f1 < 0.6 {
		t.Fatalf("distributed f1 %.3f", f1)
	}
}

func TestPublicAPIStream(t *testing.T) {
	spec := synth.AutoMixture(2, 8, 6, 1, xrand.New(7))
	st, err := keybin2.NewStream(keybin2.StreamConfig{
		Config: keybin2.Config{Seed: 8}, Dims: 8, Warmup: 300, Period: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := spec.Stream(2000, xrand.New(9))
	labeled := 0
	for {
		x, _, ok := src.Next()
		if !ok {
			break
		}
		l, err := st.Ingest(x)
		if err != nil {
			t.Fatal(err)
		}
		if l != keybin2.Noise {
			labeled++
		}
	}
	if labeled < 1000 {
		t.Fatalf("only %d labeled", labeled)
	}
}

func TestPublicHelpers(t *testing.T) {
	if keybin2.TargetDims(1280) != 16 {
		t.Fatalf("TargetDims(1280)=%d", keybin2.TargetDims(1280))
	}
	m, err := keybin2.FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil || m.Rows != 2 {
		t.Fatal("FromRows")
	}
	if keybin2.Gaussian.String() != "gaussian" {
		t.Fatal("kind constant")
	}
}

func TestPublicCheckpointAPIs(t *testing.T) {
	spec := synth.AutoMixture(2, 6, 6, 1, xrand.New(40))
	data, _ := spec.Sample(1500, xrand.New(41))
	model, labels, err := keybin2.Fit(data, keybin2.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	restored, err := keybin2.DecodeModel(model.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if l, _ := restored.Assign(data.Row(0)); l != labels[0] {
		t.Fatal("restored model labels differently")
	}

	cfg := keybin2.StreamConfig{Config: keybin2.Config{Seed: 43}, Dims: 6, Warmup: 200, Period: 200}
	st, err := keybin2.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := spec.Stream(600, xrand.New(44))
	for {
		x, _, ok := src.Next()
		if !ok {
			break
		}
		if _, err := st.Ingest(x); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := keybin2.DecodeStream(cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Seen() != st.Seen() {
		t.Fatalf("resumed seen %d vs %d", resumed.Seen(), st.Seen())
	}
}
